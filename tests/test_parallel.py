"""The parallel sweep layer: executor, profile cache, bench harness.

The load-bearing property throughout is *determinism*: every ``jobs``
value, every kill/resume split and every cache hit must reproduce the
serial seed results bit for bit.  These tests pin that down with exact
(``==``) comparisons, never approximate ones.
"""

import json
import os
import time

import numpy as np
import pytest

import repro.analysis.montecarlo as montecarlo_mod
from repro.analysis.montecarlo import (
    MonteCarloPoint,
    MonteCarloResult,
    collect_profiles,
    run_monte_carlo,
)
from repro.config import scaled_config
from repro.parallel.bench import run_bench_suite
from repro.parallel.executor import ParallelExecutor, resolve_jobs
from repro.parallel.profile_cache import ProfileCache, default_cache_dir
from repro.resilience.checkpoint import load_checkpoint
from repro.resilience.errors import (
    CheckpointCorrupt,
    CheckpointMismatchError,
    ConfigError,
    WorkerCrashError,
)
from repro.sim.runner import RunSettings, run_sweep
from repro.workloads.mixes import TABLE_III_SETS, Mix, random_mixes

CFG = scaled_config(32, epoch_cycles=150_000)  # tiny 64-set banks for speed


@pytest.fixture(scope="module")
def curves_by_name():
    return collect_profiles(config=CFG, accesses=6_000)


# ---------------------------------------------------------------------------
# resolve_jobs / ParallelExecutor
# ---------------------------------------------------------------------------


def _square(x):
    return x * x


class TestResolveJobs:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(None) == 1

    def test_explicit_value_wins(self):
        assert resolve_jobs(3) == 3

    def test_env_consulted_when_unset(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_jobs(None) == 5
        assert resolve_jobs(2) == 2  # explicit beats environment

    def test_zero_means_cpu_count(self):
        assert resolve_jobs(0) == (os.cpu_count() or 1)

    def test_negative_refused(self):
        with pytest.raises(ConfigError):
            resolve_jobs(-1)

    def test_garbage_env_refused(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ConfigError):
            resolve_jobs(None)


class TestMapOrdered:
    def test_serial_preserves_order(self):
        out = list(ParallelExecutor(1).map_ordered(_square, range(10)))
        assert out == [x * x for x in range(10)]

    def test_pool_matches_serial_order(self):
        serial = list(ParallelExecutor(1).map_ordered(_square, range(40)))
        pooled = list(ParallelExecutor(2).map_ordered(_square, range(40)))
        assert pooled == serial

    def test_single_item_stays_in_process(self):
        """One item never pays pool startup (also: fn needs no pickling)."""
        out = list(ParallelExecutor(4).map_ordered(lambda x: x + 1, [41]))
        assert out == [42]

    def test_serial_runs_initializer(self):
        state = {}
        ex = ParallelExecutor(1, initializer=state.update,
                              initargs=({"ready": True},))
        assert list(ex.map_ordered(_square, [3])) == [9]
        assert state == {"ready": True}

    def test_worker_exception_propagates(self):
        def boom(x):
            raise RuntimeError("worker died")

        with pytest.raises(RuntimeError, match="worker died"):
            list(ParallelExecutor(1).map_ordered(boom, [1]))


class _MarkSleepWorker:
    """Picklable worker: sleep, then leave a marker file per item.

    The optional poison item raises immediately instead, so the marker
    count afterwards reveals how many *queued* items the pool ran anyway.
    """

    def __init__(self, marker_dir, poison=None, sleep_s=0.2):
        self.marker_dir = str(marker_dir)
        self.poison = poison
        self.sleep_s = sleep_s

    def __call__(self, item):
        if item == self.poison:
            raise RuntimeError("poison item")
        time.sleep(self.sleep_s)
        with open(os.path.join(self.marker_dir, f"done-{item}"), "w"):
            pass
        return item


class TestPromptCancellation:
    """A dead sweep must not run its whole submission window first.

    With jobs=2 the window is 8, so all 8 items are submitted up front;
    the regression being pinned is the executor letting every queued item
    run to completion (7 markers) before the failure surfaced.
    """

    def test_worker_exception_cancels_queued_items(self, tmp_path):
        worker = _MarkSleepWorker(tmp_path, poison=0)
        with pytest.raises(WorkerCrashError, match="poison item") as info:
            list(ParallelExecutor(2).map_ordered(worker, range(8)))
        # the typed wrapper names the failing item and keeps the original
        # exception chained for debugging
        assert info.value.index == 0
        assert info.value.label == "0"
        assert isinstance(info.value.__cause__, RuntimeError)
        assert len(os.listdir(tmp_path)) < 7

    def test_abandoned_generator_cancels_queued_items(self, tmp_path):
        worker = _MarkSleepWorker(tmp_path)
        gen = ParallelExecutor(2).map_ordered(worker, range(8))
        assert next(gen) == 0
        gen.close()  # GeneratorExit must reach the cancellation path
        assert len(os.listdir(tmp_path)) < 7


# ---------------------------------------------------------------------------
# ProfileCache
# ---------------------------------------------------------------------------


class TestProfileCache:
    def test_fingerprint_tracks_every_parameter(self):
        base = dict(accesses=1000, warmup_fraction=0.4, seed=1)
        fp = ProfileCache.fingerprint(CFG, **base)
        assert fp == ProfileCache.fingerprint(CFG, **base)  # stable
        for key, value in (("accesses", 1001), ("warmup_fraction", 0.5),
                           ("seed", 2)):
            assert fp != ProfileCache.fingerprint(CFG, **{**base, key: value})
        assert fp != ProfileCache.fingerprint(
            scaled_config(8), **base  # geometry changes the key too
        )

    def test_miss_then_hit_round_trip(self, tmp_path, curves_by_name):
        cache = ProfileCache(tmp_path)
        curve = curves_by_name["bzip2"]
        assert cache.get("bzip2", "abc") is None
        cache.put("bzip2", "abc", curve)
        got = cache.get("bzip2", "abc")
        np.testing.assert_array_equal(got.misses, curve.misses)
        assert (cache.hits, cache.misses) == (1, 1)

    def test_corrupt_entry_is_a_miss(self, tmp_path, curves_by_name):
        cache = ProfileCache(tmp_path)
        cache.put("bzip2", "abc", curves_by_name["bzip2"])
        next(tmp_path.glob("*.npz")).write_bytes(b"not an npz")
        assert cache.get("bzip2", "abc") is None

    def test_no_temp_litter(self, tmp_path, curves_by_name):
        cache = ProfileCache(tmp_path)
        cache.put("bzip2", "abc", curves_by_name["bzip2"])
        assert [p.name for p in tmp_path.iterdir()] == ["bzip2-abc.npz"]

    def test_default_dir_honours_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE_CACHE", str(tmp_path / "pc"))
        assert default_cache_dir() == tmp_path / "pc"

    def test_collect_profiles_reuses_cache(self, tmp_path, curves_by_name):
        cache = ProfileCache(tmp_path)
        names = ("bzip2", "swim")
        first = collect_profiles(names, CFG, accesses=6_000, cache=cache)
        assert (cache.hits, cache.misses) == (0, 2)
        second = collect_profiles(names, CFG, accesses=6_000, cache=cache)
        assert (cache.hits, cache.misses) == (2, 2)
        for name in names:
            np.testing.assert_array_equal(
                second[name].misses, first[name].misses
            )
            np.testing.assert_array_equal(
                first[name].misses, curves_by_name[name].misses
            )

    def test_different_params_never_alias(self, tmp_path):
        cache = ProfileCache(tmp_path)
        collect_profiles(("bzip2",), CFG, accesses=6_000, cache=cache)
        collect_profiles(("bzip2",), CFG, accesses=6_000, seed=12, cache=cache)
        assert cache.hits == 0  # the seed change must miss, not lie


# ---------------------------------------------------------------------------
# Monte Carlo: jobs-invariance, kill/resume, serialisation
# ---------------------------------------------------------------------------


# bound at import time so the poison wrapper below still reaches the real
# worker once the module attribute has been monkeypatched over
_REAL_POINT = montecarlo_mod._montecarlo_point


class _PoisonPoint:
    """Picklable worker that dies on one specific mix (simulated crash)."""

    def __init__(self, poison_names):
        self.poison_names = poison_names

    def __call__(self, mix):
        if mix.names == self.poison_names:
            raise KeyboardInterrupt
        return _REAL_POINT(mix)


def assert_points_equal(got, expected):
    assert len(got) == len(expected)
    for a, b in zip(got, expected):
        assert a.mix.names == b.mix.names
        assert a.equal_misses == b.equal_misses  # exact, not approx
        assert a.unrestricted_misses == b.unrestricted_misses
        assert a.bank_aware_misses == b.bank_aware_misses
        assert a.bank_aware_ways == b.bank_aware_ways


class TestMonteCarloJobs:
    def test_pool_is_bit_identical_to_serial(self, curves_by_name):
        serial = run_monte_carlo(16, CFG, curves=curves_by_name, seed=77)
        pooled = run_monte_carlo(16, CFG, curves=curves_by_name, seed=77,
                                 jobs=2)
        assert_points_equal(pooled.points, serial.points)

    def test_killed_pool_sweep_resumes_bit_identically(
        self, tmp_path, curves_by_name, monkeypatch
    ):
        path = str(tmp_path / "mc.json")
        baseline = run_monte_carlo(16, CFG, curves=curves_by_name, seed=77)
        poison = random_mixes(16, CFG.num_cores, seed=77)[12]
        monkeypatch.setattr(
            montecarlo_mod, "_montecarlo_point", _PoisonPoint(poison.names)
        )
        with pytest.raises(KeyboardInterrupt):
            run_monte_carlo(16, CFG, curves=curves_by_name, seed=77,
                            jobs=2, checkpoint_path=path)
        monkeypatch.undo()
        _, completed = load_checkpoint(path, "monte-carlo")
        # the submission window guarantees a contiguous prefix survived
        assert 0 < len(completed) < 16
        resumed = run_monte_carlo(16, CFG, curves=curves_by_name, seed=77,
                                  jobs=2, checkpoint_path=path, resume=True)
        assert_points_equal(resumed.points, baseline.points)

    def test_mismatched_resume_names_the_keys(self, tmp_path, curves_by_name):
        path = str(tmp_path / "mc.json")
        run_monte_carlo(4, CFG, curves=curves_by_name, seed=5,
                        checkpoint_path=path)
        with pytest.raises(CheckpointMismatchError) as exc_info:
            run_monte_carlo(4, CFG, curves=curves_by_name, seed=6,
                            min_ways=2, checkpoint_path=path, resume=True)
        assert exc_info.value.mismatched == ("min_ways", "seed")
        # still a CheckpointCorrupt, so pre-existing handlers keep working
        assert isinstance(exc_info.value, CheckpointCorrupt)


class TestMonteCarloResultViews:
    def _result(self):
        points = [
            MonteCarloPoint(Mix(("bzip2",)), 100.0, 50.0 + i, 60.0 + i, (8,))
            for i in (3, 1, 2)
        ]
        return MonteCarloResult(points=points)

    def test_sorted_views_share_one_cache(self):
        res = self._result()
        first = res.sorted_by_unrestricted()
        assert [p.unrestricted_misses for p in first] == [51.0, 52.0, 53.0]
        assert res._cache is not None
        cached = res._cache
        res.sorted_by_unrestricted()
        res.series()
        assert res._cache is cached  # rebuilt zero times

    def test_cache_invalidated_by_new_points(self):
        res = self._result()
        res.series()
        res.points.append(
            MonteCarloPoint(Mix(("swim",)), 100.0, 10.0, 20.0, (8,))
        )
        u, _ = res.series()
        assert u[0] == pytest.approx(0.10)
        assert res._cache[0] == tuple(map(id, res.points))

    def test_cache_invalidated_by_replaced_point(self):
        # regression: a same-length edit must not serve stale ratios
        res = self._result()
        res.series()
        res.points[0] = MonteCarloPoint(
            Mix(("swim",)), 100.0, 10.0, 20.0, (8,)
        )
        u, _ = res.series()
        assert u[0] == pytest.approx(0.10)
        assert res.mean_bank_aware_ratio == pytest.approx(
            (0.20 + 0.61 + 0.62) / 3
        )

    def test_json_round_trip_is_exact(self, tmp_path, curves_by_name):
        result = run_monte_carlo(6, CFG, curves=curves_by_name, seed=9)
        path = tmp_path / "points.json"
        result.to_json(path)
        reread = MonteCarloResult.from_json(path)
        assert_points_equal(reread.points, result.points)
        assert [p.name for p in tmp_path.iterdir()] == ["points.json"]

    def test_from_json_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json", encoding="utf-8")
        with pytest.raises(CheckpointCorrupt):
            MonteCarloResult.from_json(bad)
        bad.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(CheckpointCorrupt):
            MonteCarloResult.from_json(bad)


# ---------------------------------------------------------------------------
# detailed sweep: jobs-invariance
# ---------------------------------------------------------------------------


class TestSweepJobs:
    def test_run_sweep_pool_matches_serial(self):
        settings = RunSettings(duration_cycles=200_000.0, seed=3)
        mixes = [TABLE_III_SETS[0]]
        schemes = ("equal-partitions", "bank-aware")
        serial = run_sweep(mixes, CFG, settings, schemes=schemes)
        pooled = run_sweep(mixes, CFG, settings, schemes=schemes, jobs=2)
        for a, b in zip(serial, pooled):
            for scheme in schemes:
                assert a.results[scheme].total_misses \
                    == b.results[scheme].total_misses
                assert a.results[scheme].total_instructions \
                    == b.results[scheme].total_instructions
                assert a.results[scheme].epochs == b.results[scheme].epochs


# ---------------------------------------------------------------------------
# bench harness
# ---------------------------------------------------------------------------


class TestBenchSuite:
    def test_quick_suite_writes_schema_stable_report(self, tmp_path):
        out = tmp_path / "BENCH_sweep.json"
        payload = run_bench_suite(quick=True, output=out)
        on_disk = json.loads(out.read_text(encoding="utf-8"))
        assert on_disk == payload
        assert on_disk["format"] == "repro-bench"
        assert on_disk["version"] == 1
        assert on_disk["suite"] == "quick"
        assert isinstance(on_disk["git_rev"], str)
        assert set(on_disk["host"]) == {"python", "numpy", "machine"}
        names = [b["name"] for b in on_disk["benchmarks"]]
        assert names == [
            "msa_observe_many",
            "msa_observe_reference",
            "trace_generation",
            "montecarlo_slice",
            "detailed_epoch",
            "detailed_epoch_batched",
            "detailed_epoch_spans",
            "tracer_extend",
        ]
        by_name = {b["name"]: b for b in on_disk["benchmarks"]}
        batched = by_name["detailed_epoch_batched"]
        assert batched["meta"]["speedup_vs_reference"] > 1.0
        assert batched["wall_s"] < by_name["detailed_epoch"]["wall_s"]
        spanned = by_name["detailed_epoch_spans"]
        profile = spanned["meta"]["span_self_s"]
        assert "run" in profile
        assert all(v >= 0.0 for v in profile.values())
        assert isinstance(spanned["meta"]["spanned_overhead_pct"], float)
        for bench in on_disk["benchmarks"]:
            assert bench["wall_s"] > 0.0
            assert bench["throughput"] > 0.0
            assert isinstance(bench["unit"], str)
            assert isinstance(bench["meta"], dict)
        # the Monte Carlo points land beside the report, round-trippable
        points = MonteCarloResult.from_json(
            tmp_path / "BENCH_sweep.points.json"
        )
        assert len(points.points) == on_disk["benchmarks"][3]["meta"]["mixes"]
