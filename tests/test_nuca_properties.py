"""Property-based stress tests of the NUCA L2 across all its modes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.nuca import NucaL2
from repro.cache.partition_map import equal_partition_map
from repro.config import L2Config

SMALL = L2Config(num_banks=4, bank_ways=2, sets_per_bank=8)


def total_resident(l2: NucaL2) -> int:
    return sum(b.occupancy() for b in l2.banks)


access_ops = st.lists(
    st.tuples(
        st.integers(0, 3),  # core
        st.integers(0, 200),  # line
        st.booleans(),  # write
    ),
    min_size=1,
    max_size=300,
)


class TestDirectoryIntegrity:
    @pytest.mark.parametrize("placement", ["parallel", "dnuca"])
    @given(ops=access_ops)
    @settings(max_examples=40, deadline=None)
    def test_shared_directory_matches_banks(self, placement, ops):
        l2 = NucaL2(SMALL, 4, placement=placement)
        l2.share_all()
        for core, line, write in ops:
            l2.access(core, line, is_write=write)
        resident = {
            line: bank.bank_id
            for bank in l2.banks
            for line in bank.resident_lines()
        }
        assert resident == l2._where
        assert total_resident(l2) <= SMALL.num_banks * SMALL.bank_ways * SMALL.sets_per_bank

    @pytest.mark.parametrize("placement", ["parallel", "dnuca"])
    @given(ops=access_ops)
    @settings(max_examples=40, deadline=None)
    def test_partitioned_directory_matches_banks(self, placement, ops):
        l2 = NucaL2(SMALL, 4, placement=placement)
        l2.apply_partition(equal_partition_map(4, SMALL.num_banks, SMALL.bank_ways))
        for core, line, write in ops:
            # keep cores in disjoint regions like multiprogrammed workloads
            l2.access(core, (core << 20) | line, is_write=write)
        resident = {
            line: bank.bank_id
            for bank in l2.banks
            for line in bank.resident_lines()
        }
        assert resident == l2._where

    @given(ops=access_ops)
    @settings(max_examples=30, deadline=None)
    def test_second_access_always_hits(self, ops):
        """Accessing the same line twice in a row must hit — no mode or
        migration may lose the just-touched line."""
        l2 = NucaL2(SMALL, 4, placement="dnuca")
        l2.share_all()
        for core, line, write in ops:
            l2.access(core, line, is_write=write)
            assert l2.access(core, line).hit

    @given(ops=access_ops)
    @settings(max_examples=30, deadline=None)
    def test_miss_plus_hit_counts_conserved(self, ops):
        l2 = NucaL2(SMALL, 4, placement="dnuca")
        l2.share_all()
        for core, line, write in ops:
            l2.access(core, line, is_write=write)
        assert l2.stats.total_accesses() == len(ops)


class TestEvictionAccounting:
    @given(ops=access_ops)
    @settings(max_examples=30, deadline=None)
    def test_line_conservation(self, ops):
        """Every miss fills exactly one line; every line leaves the cache
        only through a reported eviction: misses - evictions == resident."""
        l2 = NucaL2(SMALL, 4, placement="dnuca")
        l2.share_all()
        evictions = 0
        for core, line, write in ops:
            r = l2.access(core, line, is_write=write)
            evictions += len(r.evictions)
        assert l2.stats.total_misses() - evictions == total_resident(l2)
        assert total_resident(l2) == len(l2._where)
