"""The telemetry subsystem: tracer, schema, metrics, report, exporters.

Two contracts dominate: tracing off means *nothing* (no events, no
telemetry objects, bit-identical numeric results), and tracing on means
the same event stream whether a sweep ran serially or on a pool (up to
the wall-clock fields the schema marks non-deterministic).
"""

import json
import math

import pytest

from repro.analysis.montecarlo import collect_profiles, run_monte_carlo
from repro.config import scaled_config
from repro.sim.runner import RunSettings, compare_schemes, run_mix
from repro.sim.stats import SystemResult
from repro.telemetry import metrics
from repro.telemetry.metrics import Histogram
from repro.telemetry.events import ADVISORY_EVENTS
from repro.telemetry import (
    EVENT_SCHEMAS,
    SCHEMA_VERSION,
    MetricsRegistry,
    SpanRecorder,
    TelemetryError,
    Tracer,
    canonical_events,
    check_trace,
    chrome_trace,
    epoch_digest,
    maybe_span,
    read_jsonl,
    render_spans_text,
    render_text,
    schema_rows,
    self_seconds_by_phase,
    span_attribution,
    span_totals,
    validate_event,
    write_jsonl,
)
from repro.workloads.mixes import TABLE_III_SETS

CFG = scaled_config(32, epoch_cycles=150_000)  # tiny 64-set banks for speed


@pytest.fixture(scope="module")
def curves_by_name():
    return collect_profiles(config=CFG, accesses=6_000)


# ---------------------------------------------------------------------------
# Tracer / event schema
# ---------------------------------------------------------------------------


class TestTracer:
    def test_emit_sequences_and_stores(self):
        t = Tracer()
        t.emit_run_meta("simulate", detail="unit test")
        t.emit("epoch_skip", time=100.0, epoch=0, reason="warmup")
        assert [e["seq"] for e in t.events] == [0, 1]
        assert len(t) == 2
        assert t.events[0]["schema_version"] == SCHEMA_VERSION
        assert t.select("epoch_skip") == [t.events[1]]

    def test_emit_validates_against_the_schema(self):
        t = Tracer()
        with pytest.raises(TelemetryError, match="unknown event type"):
            t.emit("no_such_event")
        with pytest.raises(TelemetryError, match="missing required field"):
            t.emit("epoch_skip", time=1.0, epoch=0)  # no reason
        with pytest.raises(TelemetryError, match="expected"):
            t.emit("epoch_skip", time=1.0, epoch=0, reason=42)
        with pytest.raises(TelemetryError, match="unknown fields"):
            t.emit("epoch_skip", time=1.0, epoch=0, reason="x", extra=1)
        assert t.events == []  # nothing half-emitted

    def test_emit_jsonifies_tuples(self):
        t = Tracer()
        event = t.emit(
            "epoch_decision", time=1.0, epoch=0, algorithm="bank-aware",
            ways=(4, 4), projected_misses=(10.0, 12.0),
        )
        assert event["ways"] == [4, 4]  # tuple became a JSON list

    def test_extend_resequences_and_tags_scheme(self):
        worker = Tracer()
        worker.emit("epoch_skip", time=1.0, epoch=0, reason="warmup")
        worker.emit("epoch_skip", time=2.0, epoch=1, reason="warmup")
        parent = Tracer()
        parent.emit_run_meta("compare")
        parent.extend(worker.events, scheme="bank-aware")
        assert [e["seq"] for e in parent.events] == [0, 1, 2]
        assert [e.get("scheme") for e in parent.events[1:]] \
            == ["bank-aware", "bank-aware"]
        # the worker's own log is untouched by the merge
        assert [e["seq"] for e in worker.events] == [0, 1]
        assert "scheme" not in worker.events[0]

    def test_jsonl_round_trip(self, tmp_path):
        t = Tracer()
        t.emit_run_meta("simulate")
        t.emit("epoch_skip", time=1.0, epoch=0, reason="warmup")
        path = tmp_path / "trace.jsonl"
        t.write_jsonl(path)
        assert read_jsonl(path) == t.events
        assert [p.name for p in tmp_path.iterdir()] == ["trace.jsonl"]

    def test_read_jsonl_rejects_damage(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"type": "run_meta"\n', encoding="utf-8")
        with pytest.raises(TelemetryError, match="not valid JSON"):
            read_jsonl(bad)
        bad.write_text("[1, 2]\n", encoding="utf-8")
        with pytest.raises(TelemetryError, match="expected a JSON object"):
            read_jsonl(bad)

    def test_write_jsonl_empty_stream(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        write_jsonl(path, [])
        assert read_jsonl(path) == []

    def test_write_jsonl_streams_large_traces(self, tmp_path):
        # more events than one write chunk: the stream path must produce
        # the same file as a whole-buffer write would
        from repro.telemetry.tracer import WRITE_CHUNK_EVENTS

        t = Tracer()
        for i in range(WRITE_CHUNK_EVENTS + 7):
            t.emit("epoch_skip", time=float(i), epoch=i, reason="warmup")
        path = tmp_path / "big.jsonl"
        t.write_jsonl(path)
        assert read_jsonl(path) == t.events

    def test_extend_pre_validated_skips_revalidation(self):
        worker = Tracer()
        worker.emit("epoch_skip", time=1.0, epoch=0, reason="warmup")
        checked, trusted = Tracer(), Tracer()
        checked.extend(worker.events, scheme="s")
        trusted.extend(worker.events, scheme="s", pre_validated=True)
        assert trusted.events == checked.events
        # the fast path trusts the caller: a stream only a validating
        # tracer could reject passes straight through
        bogus = [{"type": "epoch_skip", "seq": 0, "time": 1.0, "epoch": 0}]
        trusted.extend(bogus, pre_validated=True)
        with pytest.raises(TelemetryError, match="missing required field"):
            checked.extend(bogus)

    def test_live_sink_appends_during_the_run(self, tmp_path):
        sink = tmp_path / "live.jsonl"
        t = Tracer(sink=sink, sink_flush_every=1)
        t.emit_run_meta("simulate")
        t.emit("epoch_skip", time=1.0, epoch=0, reason="warmup")
        # both events already on disk while the run is still going
        assert read_jsonl(sink) == t.events
        t.emit("epoch_skip", time=2.0, epoch=1, reason="warmup")
        assert read_jsonl(sink) == t.events
        # finalisation atomically replaces the sink with the full stream
        t.write_jsonl(sink)
        assert read_jsonl(sink) == t.events
        assert [p.name for p in tmp_path.iterdir()] == ["live.jsonl"]


class TestProgressHeartbeats:
    def test_montecarlo_emits_progress(self, curves_by_name):
        tracer = Tracer()
        run_monte_carlo(6, CFG, curves=curves_by_name, seed=9,
                        tracer=tracer)
        beats = tracer.select("progress")
        assert beats, "no progress heartbeats in the stream"
        assert all(b["source"] == "montecarlo" for b in beats)
        assert beats[-1]["done"] == beats[-1]["total"] == 6
        assert [b["done"] for b in beats] \
            == sorted({b["done"] for b in beats})
        assert check_trace(tracer.events) == []

    def test_heartbeats_match_across_jobs(self, curves_by_name):
        def run(jobs):
            tracer = Tracer()
            run_monte_carlo(5, CFG, curves=curves_by_name, seed=9,
                            jobs=jobs, tracer=tracer)
            return [
                e for e in canonical_events(tracer.events)
                if e["type"] == "progress"
            ]

        assert run(1) == run(2)


class TestEventSchema:
    def test_canonical_events_strips_only_wall_clock(self):
        events = [
            {"type": "sweep_item", "seq": 0, "index": 0, "label": "a",
             "wall_s": 0.5},
            {"type": "epoch_skip", "seq": 1, "time": 1.0, "epoch": 0,
             "reason": "warmup", "scheme": "bank-aware"},
        ]
        canon = canonical_events(events)
        assert canon[0] == {"type": "sweep_item", "seq": 0, "index": 0,
                            "label": "a"}
        assert canon[1] == events[1]  # fully deterministic, untouched

    def test_every_schema_is_documented(self):
        documented = {etype for etype, _, _ in schema_rows()}
        assert documented == set(EVENT_SCHEMAS)

    def test_advisory_supervisor_events_dropped_and_seq_renumbered(self):
        # a retry happens only in the run whose worker crashed, so the
        # canonical projection must erase it without leaving a seq gap
        events = [
            {"type": "sweep_item", "seq": 0, "index": 0, "label": "a"},
            {"type": "supervisor", "seq": 1, "kind": "retry", "index": 1,
             "attempt": 1, "rung": "pool", "detail": "boom"},
            {"type": "sweep_item", "seq": 2, "index": 1, "label": "b"},
        ]
        canon = canonical_events(events)
        assert [e["type"] for e in canon] == ["sweep_item", "sweep_item"]
        assert [e["seq"] for e in canon] == [0, 1]
        clean = [events[0], dict(events[2], seq=1)]
        assert canon == canonical_events(clean)  # chaos == clean

    def test_supervisor_event_validates(self):
        assert ADVISORY_EVENTS == {"supervisor", "span"}
        assert validate_event(
            {"type": "supervisor", "seq": 4, "kind": "quarantine",
             "index": 7, "attempt": 3, "label": "mix-7", "rung": "serial",
             "detail": "ValueError: poison"}
        ) == []

    def test_validate_event_accepts_common_fields(self):
        assert validate_event(
            {"type": "epoch_skip", "seq": 3, "scheme": "bank-aware",
             "time": 1.0, "epoch": 0, "reason": "warmup"}
        ) == []


# ---------------------------------------------------------------------------
# MetricsRegistry
# ---------------------------------------------------------------------------


class TestMetrics:
    def test_counter_gauge_histogram(self):
        reg = MetricsRegistry()
        reg.counter("l2.hits").inc(10)
        reg.counter("l2.hits").inc(5)  # get-or-create returns the same one
        reg.gauge("jobs").set(4)
        reg.histogram("wall").observe(1.0)
        reg.histogram("wall").observe(3.0)
        snap = reg.snapshot()
        assert snap["counters"] == {"l2.hits": 15.0}
        assert snap["gauges"] == {"jobs": 4.0}
        wall = snap["histograms"]["wall"]
        # exact moments, bucket-estimated percentiles
        assert wall["count"] == 2
        assert wall["total"] == 4.0
        assert wall["min"] == 1.0
        assert wall["max"] == 3.0
        assert wall["mean"] == 2.0
        # p50 lands in 1.0's bucket (within one growth factor above it);
        # p95/p99 clamp to the exact observed max
        assert 1.0 <= wall["p50"] <= 1.0 * metrics.BUCKET_GROWTH
        assert wall["p95"] == 3.0
        assert wall["p99"] == 3.0

    def test_counters_cannot_decrease(self):
        with pytest.raises(ValueError, match="cannot decrease"):
            MetricsRegistry().counter("x").inc(-1)

    def test_empty_histogram_summary_is_finite(self):
        snap = MetricsRegistry().histogram("w").summary()
        assert snap == {"count": 0, "total": 0.0, "min": 0.0, "max": 0.0,
                        "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}

    def test_snapshot_is_json_serialisable(self):
        reg = MetricsRegistry()
        reg.histogram("w").observe(2.5)
        assert json.loads(json.dumps(reg.snapshot())) == reg.snapshot()

    def test_bucket_geometry_is_deterministic(self):
        # boundaries derive from module constants only: same value, same
        # bucket, on every run and host
        assert metrics.bucket_index(0.0) == 0
        assert metrics.bucket_index(metrics.BUCKET_SCALE) == 0
        assert metrics.bucket_index(1e300) == metrics.MAX_BUCKET
        for value in (1e-6, 0.003, 1.0, 7.5, 1e4):
            index = metrics.bucket_index(value)
            assert metrics.bucket_upper_bound(index) >= value
            assert (
                metrics.bucket_upper_bound(index - 1) < value
                or index == 0
            )

    def test_quantiles_are_order_independent(self):
        values = [0.001 * (i % 17 + 1) for i in range(100)]
        a, b = Histogram("a"), Histogram("b")
        for v in values:
            a.observe(v)
        for v in reversed(values):
            b.observe(v)
        assert a.summary() == b.summary()

    def test_quantile_relative_error_is_bounded(self):
        h = Histogram("w")
        values = [0.0017 * 1.37 ** i for i in range(40)]
        for v in values:
            h.observe(v)
        exact = sorted(values)
        for q in (0.5, 0.95, 0.99):
            # the bucket walk answers with the ceil(q*n)-th smallest value
            true = exact[max(0, math.ceil(q * len(exact)) - 1)]
            # one growth factor of slack each way (bucket width ~19 %)
            assert true / metrics.BUCKET_GROWTH <= h.quantile(q) \
                <= true * metrics.BUCKET_GROWTH

    def test_identical_observations_collapse_every_quantile(self):
        h = Histogram("w")
        for _ in range(10):
            h.observe(42.0)
        summary = h.summary()
        assert summary["p50"] == summary["p95"] == summary["p99"] == 42.0

    def test_quantile_rejects_bad_q(self):
        h = Histogram("w")
        h.observe(1.0)
        with pytest.raises(ValueError, match="quantile"):
            h.quantile(0.0)
        with pytest.raises(ValueError, match="quantile"):
            h.quantile(1.5)

    def test_bucket_index_boundary_values(self):
        # zero and everything at-or-below the scale floor share bucket 0
        assert metrics.bucket_index(0.0) == 0
        assert metrics.bucket_index(5e-324) == 0  # smallest denormal
        assert metrics.bucket_index(1e-300) == 0
        assert metrics.bucket_index(metrics.BUCKET_SCALE) == 0
        # an exact computed edge may round to either adjacent bucket (float
        # log), but containment must hold and the choice is deterministic
        for index in (1, 7, 100, metrics.MAX_BUCKET - 1):
            edge = metrics.bucket_upper_bound(index)
            got = metrics.bucket_index(edge)
            assert got in (index, index + 1)
            assert metrics.bucket_upper_bound(got) >= edge
            assert metrics.bucket_upper_bound(got - 1) <= edge
            # nudged past the edge, the value spills into the next bucket
            assert metrics.bucket_index(edge * 1.0000001) == index + 1
        # the overflow bucket catches everything beyond the table, inf too
        assert metrics.bucket_index(1e300) == metrics.MAX_BUCKET
        assert metrics.bucket_index(float("inf")) == metrics.MAX_BUCKET

    def test_bucket_upper_bounds_grow_geometrically(self):
        bounds = [
            metrics.bucket_upper_bound(i) for i in range(metrics.MAX_BUCKET)
        ]
        assert bounds == sorted(bounds)
        for lo, hi in zip(bounds, bounds[1:]):
            assert hi == pytest.approx(lo * metrics.BUCKET_GROWTH)

    def test_quantile_clamps_to_observed_envelope(self):
        # bucket upper bounds overestimate; the min/max envelope must win
        h = Histogram("w")
        h.observe(1.0)
        h.observe(1.0000001)  # same bucket, distinct min/max
        assert h.quantile(0.01) >= h.min
        assert h.quantile(1.0) == h.max
        single = Histogram("s")
        single.observe(3.7)
        for q in (0.001, 0.5, 0.999, 1.0):
            assert single.quantile(q) == 3.7

    def test_histogram_merge_matches_combined_observation(self):
        values_a = [0.001 * (i % 13 + 1) for i in range(60)]
        values_b = [0.02 * (i % 7 + 1) for i in range(41)]
        a, b, combined = Histogram("a"), Histogram("b"), Histogram("c")
        for v in values_a:
            a.observe(v)
            combined.observe(v)
        for v in values_b:
            b.observe(v)
            combined.observe(v)
        a.merge(b)
        assert a.count == combined.count
        assert a.total == pytest.approx(combined.total)
        assert a.min == combined.min
        assert a.max == combined.max
        assert a.buckets == combined.buckets
        for q in (0.5, 0.95, 0.99):
            assert a.quantile(q) == combined.quantile(q)

    def test_histogram_merge_empty_sides(self):
        a, b = Histogram("a"), Histogram("b")
        b.observe(2.0)
        a.merge(b)  # empty += populated
        assert (a.count, a.min, a.max) == (1, 2.0, 2.0)
        a.merge(Histogram("empty"))  # populated += empty: no-op
        assert (a.count, a.min, a.max) == (1, 2.0, 2.0)
        assert Histogram("e").summary()["count"] == 0


# ---------------------------------------------------------------------------
# report / check / chrome exporter
# ---------------------------------------------------------------------------


def _sample_stream():
    t = Tracer()
    t.emit_run_meta("compare", detail="set 1")
    t.emit("epoch_decision", time=150_000.0, epoch=0,
           algorithm="bank-aware", ways=[6, 10], center_banks=[0, 1],
           pairs=[[0, 1]], projected_misses=[100.0, 200.0],
           scheme="bank-aware")
    t.emit("epoch_skip", time=300_000.0, epoch=1,
           reason="hysteresis hold on rung equal-share", scheme="bank-aware")
    t.emit("guard_action", time=300_000.0, epoch=1, kind="fallback",
           detail="profiler fault", mode="equal-share", scheme="bank-aware")
    t.emit("bank_snapshot", time=150_000.0, epoch=0, hits=[50, 60],
           misses=[5, 6], occupancy=[30, 40], queue_served=[100, 110],
           queue_delay=[1.5, 2.5], migrations=3, writebacks=2,
           scheme="bank-aware")
    t.emit("bank_snapshot", time=300_000.0, epoch=-1, hits=[90, 95],
           misses=[9, 9], occupancy=[31, 41], queue_served=[180, 190],
           queue_delay=[2.0, 3.0], migrations=7, writebacks=2,
           scheme="bank-aware")
    t.emit("sweep_item", index=0, label="set1:bank-aware", wall_s=0.25)
    return t.events


class TestReport:
    def test_digest_groups_by_scheme_and_epoch(self):
        digest = epoch_digest(_sample_stream())
        assert digest["event_counts"]["bank_snapshot"] == 2
        assert digest["run_meta"][0]["source"] == "compare"
        scheme = digest["schemes"]["bank-aware"]
        assert scheme["epochs"][0]["installed"] is True
        assert scheme["epochs"][1]["installed"] is False
        assert scheme["epochs"][1]["reason"].startswith("hysteresis")
        assert [g["kind"] for g in scheme["guard"]] == ["fallback"]
        # snapshot deltas are against the previous snapshot of the scheme
        assert [s["migrations_delta"] for s in scheme["snapshots"]] == [3, 4]
        assert [s["writebacks_delta"] for s in scheme["snapshots"]] == [2, 0]

    def test_render_text_shows_the_decision_tables(self):
        text = render_text(_sample_stream())
        assert "Trace summary" in text
        assert "Epoch decisions [bank-aware]" in text
        assert "Guard ladder [bank-aware]" in text
        assert "Bank snapshots" in text
        assert "ways=[6, 10]" in text
        assert "slowest set1:bank-aware at 0.250s" in text

    def test_check_trace_requires_run_meta_header(self):
        events = _sample_stream()
        assert check_trace(events) == []
        headless = events[1:]
        problems = check_trace(headless)
        assert any("run_meta" in p for p in problems)

    def test_check_trace_reports_schema_violations_with_index(self):
        events = _sample_stream()
        del events[2]["reason"]
        problems = check_trace(events)
        assert problems == ["event #2: epoch_skip: missing required "
                            "field 'reason'"]


class TestChromeTrace:
    def test_tracks_and_events(self):
        payload = chrome_trace(_sample_stream())
        events = payload["traceEvents"]
        instants = [e for e in events if e["ph"] == "i"]
        counters = [e for e in events if e["ph"] == "C"]
        spans = [e for e in events if e["ph"] == "X"]
        # decision + skip + guard on the simulated-time track, kilocycles
        assert len(instants) == 3
        assert all(e["pid"] == 1 for e in instants)
        assert instants[0]["ts"] == pytest.approx(150.0)
        assert "ways=[6, 10]" in instants[0]["name"]
        assert len(counters) == 2
        assert counters[-1]["args"] == {"migrations": 7, "writebacks": 2}
        assert len(spans) == 1
        assert spans[0]["pid"] == 2
        assert spans[0]["dur"] == pytest.approx(0.25e6)

    def test_sweep_items_lie_end_to_end_per_lane(self):
        t = Tracer()
        t.emit("sweep_item", index=0, label="a", wall_s=0.5)
        t.emit("sweep_item", index=1, label="b", wall_s=0.25)
        spans = [e for e in chrome_trace(t.events)["traceEvents"]
                 if e["ph"] == "X"]
        assert spans[0]["ts"] == 0.0
        assert spans[1]["ts"] == pytest.approx(0.5e6)  # after the first


# ---------------------------------------------------------------------------
# the zero-overhead-when-off and serial==parallel contracts, end to end
# ---------------------------------------------------------------------------


class TestDetailedRunTracing:
    SETTINGS = dict(duration_cycles=450_000.0, seed=3)

    def test_untraced_run_allocates_no_telemetry(self):
        result = run_mix(TABLE_III_SETS[0], "bank-aware", CFG,
                         RunSettings(**self.SETTINGS))
        assert result.events == []
        assert result.telemetry is None
        payload = result.to_dict()
        # untraced checkpoints stay byte-identical to the old format
        assert "events" not in payload
        assert "telemetry" not in payload

    def test_tracing_changes_no_numbers(self):
        plain = run_mix(TABLE_III_SETS[0], "bank-aware", CFG,
                        RunSettings(**self.SETTINGS))
        traced = run_mix(TABLE_III_SETS[0], "bank-aware", CFG,
                         RunSettings(**self.SETTINGS, trace=True))
        assert traced.total_misses == plain.total_misses  # exact
        assert traced.total_instructions == plain.total_instructions
        assert [tuple(e.ways) for e in traced.epochs] \
            == [tuple(e.ways) for e in plain.epochs]

    def test_traced_run_emits_a_valid_stream(self):
        result = run_mix(TABLE_III_SETS[0], "bank-aware", CFG,
                         RunSettings(**self.SETTINGS, trace=True))
        assert check_trace(result.events) == []
        types = {e["type"] for e in result.events}
        assert "run_meta" in types
        assert "bank_snapshot" in types
        assert types & {"epoch_decision", "epoch_skip"}
        # one decision or skip per completed epoch boundary
        boundaries = [e for e in result.events
                      if e["type"] in ("epoch_decision", "epoch_skip")]
        assert [e["epoch"] for e in boundaries] \
            == list(range(len(boundaries)))
        # the end-of-run snapshot uses the epoch=-1 convention
        assert result.events[-1]["type"] == "bank_snapshot"
        assert result.events[-1]["epoch"] == -1
        tel = result.telemetry
        # bank counters are whole-run (warmup included), so the registry
        # total must equal the end-of-run snapshot, not the stats window
        assert tel["counters"]["l2.misses"] \
            == float(sum(result.events[-1]["misses"]))
        assert tel["counters"]["l2.misses"] >= result.total_misses
        assert tel["histograms"]["l2.bank_hits"]["count"] \
            == CFG.l2.num_banks

    def test_traced_result_round_trips_through_dict(self):
        result = run_mix(TABLE_III_SETS[0], "bank-aware", CFG,
                         RunSettings(**self.SETTINGS, trace=True))
        reread = SystemResult.from_dict(
            json.loads(json.dumps(result.to_dict()))
        )
        assert reread.events == result.events
        assert reread.telemetry == result.telemetry


class TestSerialParallelStreamEquality:
    SCHEMES = ("equal-partitions", "bank-aware")

    def test_compare_streams_match(self):
        settings = RunSettings(duration_cycles=450_000.0, seed=3, trace=True)

        def run(jobs):
            tracer = Tracer()
            tracer.emit_run_meta("compare", detail="set 1")
            compare_schemes(TABLE_III_SETS[0], CFG, settings,
                            schemes=self.SCHEMES, jobs=jobs, tracer=tracer)
            return tracer.events

        serial, pooled = run(1), run(2)
        assert canonical_events(pooled) == canonical_events(serial)
        assert len(serial) > len(self.SCHEMES)  # real payload, not headers

    def test_montecarlo_streams_match(self, curves_by_name):
        def run(jobs):
            tracer = Tracer()
            run_monte_carlo(6, CFG, curves=curves_by_name, seed=9,
                            jobs=jobs, tracer=tracer)
            return tracer.events

        serial, pooled = run(1), run(2)
        assert canonical_events(pooled) == canonical_events(serial)
        points = [e for e in serial if e["type"] == "mc_point"]
        assert [e["index"] for e in points] == list(range(6))


# ---------------------------------------------------------------------------
# span profiler
# ---------------------------------------------------------------------------


class TestSpanRecorder:
    def test_nesting_builds_slash_paths_and_depths(self):
        rec = SpanRecorder()
        with rec.span("run"):
            with rec.span("decide"):
                pass
            with rec.span("install"):
                with rec.span("sanitize"):
                    pass
        assert rec.open_depth == 0
        # completion order: children close before their parents
        assert [r["path"] for r in rec.records] == [
            "run/decide", "run/install/sanitize", "run/install", "run",
        ]
        assert [r["depth"] for r in rec.records] == [1, 2, 1, 0]
        for r in rec.records:
            assert r["t1"] >= r["t0"]

    def test_pop_unwinds_on_exception(self):
        rec = SpanRecorder()
        with pytest.raises(RuntimeError):
            with rec.span("run"):
                raise RuntimeError("boom")
        assert rec.open_depth == 0
        assert [r["path"] for r in rec.records] == ["run"]

    def test_maybe_span_returns_shared_noop_when_off(self):
        a = maybe_span(None, "x")
        b = maybe_span(None, "y")
        assert a is b  # one module-level nullcontext, no allocation
        with a:
            pass
        rec = SpanRecorder()
        with maybe_span(rec, "z"):
            pass
        assert [r["path"] for r in rec.records] == ["z"]

    def test_emit_events_flushes_advisory_records(self):
        rec = SpanRecorder()
        with rec.span("run"):
            pass
        tracer = Tracer()
        rec.emit_events(tracer)
        assert [e["type"] for e in tracer.events] == ["span"]
        assert validate_event(tracer.events[0]) == []
        # advisory: the canonical projection drops spans wholesale
        assert canonical_events(tracer.events) == []


class TestSpanAttribution:
    @staticmethod
    def _events(records):
        return [{"type": "span", "seq": i, **r}
                for i, r in enumerate(records)]

    def test_self_time_subtracts_direct_children(self):
        events = self._events([
            {"name": "decide", "path": "run/decide", "depth": 1,
             "t0": 1.0, "t1": 4.0},
            {"name": "install", "path": "run/install", "depth": 1,
             "t0": 4.0, "t1": 6.0},
            {"name": "run", "path": "run", "depth": 0,
             "t0": 0.0, "t1": 10.0},
        ])
        rows = {r["path"]: r for r in span_attribution(events)}
        assert rows["run"]["self_s"] == pytest.approx(5.0)  # 10 - 3 - 2
        assert rows["run/decide"]["self_s"] == pytest.approx(3.0)
        assert rows["run/install"]["self_s"] == pytest.approx(2.0)
        totals = span_totals(events)
        assert totals["spans"] == 3
        assert totals["paths"] == 3
        assert totals["wall_total_s"] == pytest.approx(10.0)
        # the reconciliation invariant: self times sum to the root total
        assert totals["self_total_s"] == pytest.approx(
            totals["wall_total_s"]
        )

    def test_rows_sort_by_descending_self_time(self):
        events = self._events([
            {"name": "a", "path": "run/a", "depth": 1, "t0": 0.0, "t1": 1.0},
            {"name": "b", "path": "run/b", "depth": 1, "t0": 1.0, "t1": 8.0},
            {"name": "run", "path": "run", "depth": 0, "t0": 0.0, "t1": 9.0},
        ])
        paths = [r["path"] for r in span_attribution(events)]
        assert paths == ["run/b", "run", "run/a"]

    def test_self_seconds_by_phase_shape(self):
        events = self._events([
            {"name": "run", "path": "run", "depth": 0, "t0": 0.0, "t1": 2.0},
        ])
        assert self_seconds_by_phase(events) == {"run": pytest.approx(2.0)}

    def test_render_spans_text_reconciles(self):
        events = self._events([
            {"name": "decide", "path": "run/decide", "depth": 1,
             "t0": 1.0, "t1": 4.0},
            {"name": "run", "path": "run", "depth": 0,
             "t0": 0.0, "t1": 10.0},
        ])
        text = render_spans_text(events)
        assert "run/decide" in text
        assert "reconciles with root-span wall total 10.0000s" in text
        assert "self-time total 10.0000s" in text

    def test_render_spans_text_without_spans(self):
        assert "no span events" in render_spans_text([])


class TestSpannedDetailedRun:
    SETTINGS = dict(duration_cycles=450_000.0, seed=3)

    def test_spans_require_tracing(self):
        from repro.resilience import ConfigError

        with pytest.raises(ConfigError, match="requires tracing"):
            run_mix(TABLE_III_SETS[0], "bank-aware", CFG,
                    RunSettings(**self.SETTINGS, spans=True))

    def test_spanned_run_is_canonically_identical(self):
        traced = run_mix(TABLE_III_SETS[0], "bank-aware", CFG,
                         RunSettings(**self.SETTINGS, trace=True))
        spanned = run_mix(TABLE_III_SETS[0], "bank-aware", CFG,
                          RunSettings(**self.SETTINGS, trace=True,
                                      spans=True))
        assert spanned.total_misses == traced.total_misses
        assert spanned.total_instructions == traced.total_instructions
        assert [tuple(e.ways) for e in spanned.epochs] \
            == [tuple(e.ways) for e in traced.epochs]
        assert canonical_events(spanned.events) \
            == canonical_events(traced.events)
        assert check_trace(spanned.events) == []
        # the epoch phases appear with their documented names
        paths = {e["path"] for e in spanned.events if e["type"] == "span"}
        assert "run" in paths
        assert {"run/profiler.observe", "run/policy.decide", "run/install"} \
            <= paths
        # spans flush before the final epoch=-1 snapshot, preserving the
        # trailing-snapshot contract
        assert spanned.events[-1]["type"] == "bank_snapshot"
        assert spanned.events[-1]["epoch"] == -1

    def test_spanned_batched_backend_matches_reference(self):
        ref = run_mix(TABLE_III_SETS[0], "bank-aware", CFG,
                      RunSettings(**self.SETTINGS, trace=True, spans=True,
                                  sanitize=True))
        bat = run_mix(TABLE_III_SETS[0], "bank-aware", CFG,
                      RunSettings(**self.SETTINGS, trace=True, spans=True,
                                  sanitize=True, sim_backend="batched"))
        assert canonical_events(bat.events) == canonical_events(ref.events)
        # the batched engine profiles its deferred-flush phases
        bat_paths = {e["path"] for e in bat.events if e["type"] == "span"}
        assert "run/profiler.flush" in bat_paths
        assert "run/queue.drain" in bat_paths

    def test_chrome_trace_renders_span_track(self):
        spanned = run_mix(TABLE_III_SETS[0], "bank-aware", CFG,
                          RunSettings(**self.SETTINGS, trace=True,
                                      spans=True))
        payload = chrome_trace(spanned.events)
        span_events = [
            e for e in payload["traceEvents"]
            if e.get("pid") == 3 and e.get("ph") == "X"
        ]
        assert span_events
        assert min(e["ts"] for e in span_events) == 0.0  # origin-relative
        assert all(e["dur"] >= 0.0 for e in span_events)
