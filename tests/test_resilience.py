"""Resilience subsystem: faults, guard invariants, ladder, checkpoints."""

import json
import os

import numpy as np
import pytest

from repro.analysis.montecarlo import collect_profiles, run_monte_carlo
from repro.cache.nuca import NucaL2
from repro.config import L2Config, ResilienceConfig, scaled_config
from repro.partitioning.bank_aware import bank_aware_partition
from repro.profiling.msa import MSAProfiler
from repro.resilience import (
    CheckpointCorrupt,
    CheckpointCorruptError,
    ConfigError,
    DecisionGuard,
    DegradedMode,
    FaultPlan,
    FaultSpec,
    PartitionInvariantError,
    ProfilerFault,
    ReproError,
    SweepCheckpoint,
    load_checkpoint,
    save_checkpoint,
)
from repro.resilience.checkpoint import backup_path
from repro.sim.controller import EpochController
from repro.sim.runner import RunSettings, run_mix, run_sweep
from repro.util.rng import rng_stream
from repro.workloads import TABLE_III_SETS, generate_trace, get, random_mixes

CFG = scaled_config(32, epoch_cycles=150_000)  # tiny 64-set banks for speed


# --------------------------------------------------------------------------
# error taxonomy


class TestErrorTaxonomy:
    def test_hierarchy(self):
        for exc in (ProfilerFault, PartitionInvariantError, CheckpointCorrupt,
                    ConfigError):
            assert issubclass(exc, ReproError)

    def test_replaced_valueerrors_stay_catchable(self):
        # callers that caught ValueError on these paths must keep working
        assert issubclass(PartitionInvariantError, ValueError)
        assert issubclass(ConfigError, ValueError)

    def test_bank_aware_invariants_are_typed(self):
        from repro.partitioning.bank_aware import BankAwareDecision

        with pytest.raises(PartitionInvariantError):
            BankAwareDecision(ways=(8, 8), center_banks=(1,), pairs=())


# --------------------------------------------------------------------------
# fault plans


class TestFaultPlan:
    def test_parse_round_trip(self):
        plan = FaultPlan.parse("0:zero@2,3:corrupt@1-4,*:drop-epoch@5", seed=9)
        assert plan.faults == (
            FaultSpec(0, "zero", 2, None),
            FaultSpec(3, "corrupt", 1, 4),
            FaultSpec(-1, "drop-epoch", 5, None),
        )
        assert FaultPlan.parse(str(plan), seed=9) == plan

    @pytest.mark.parametrize("bad", [
        "0:typo", "zero", "x:zero", "*:zero", "0:zero@9-3", "0:zero@a",
    ])
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(ConfigError):
            FaultPlan.parse(bad)

    def test_windows(self):
        spec = FaultSpec(0, "zero", 2, 5)
        assert [spec.active(e) for e in range(7)] == [
            False, False, True, True, True, False, False,
        ]

    def test_zero_and_freeze(self):
        plan = FaultPlan((FaultSpec(0, "zero"), FaultSpec(1, "freeze", 1)))
        inj = plan.injector()
        h = np.arange(5, dtype=float)
        assert not inj.filter_histogram(0, h, 0).any()
        # epoch 0: freeze not yet active; epoch 1 snapshots; epoch 2 stale
        assert (inj.filter_histogram(1, h, 0) == h).all()
        assert (inj.filter_histogram(1, h, 1) == h).all()
        assert (inj.filter_histogram(1, h * 10, 2) == h).all()
        # untouched core passes through
        assert (inj.filter_histogram(2, h, 0) == h).all()

    def test_corruption_is_seed_deterministic(self):
        h = np.linspace(10, 500, 32)
        plans = [FaultPlan((FaultSpec(0, "corrupt"),), seed=s) for s in (4, 4, 5)]
        a, b, c = (
            p.injector().filter_histogram(0, h, 3) for p in plans
        )
        assert (a == b).all()
        assert not (a == c).all()

    def test_degenerate_breaks_monotonicity(self):
        h = np.full(16, 100.0)
        out = FaultPlan((FaultSpec(0, "degenerate"),)).injector(
        ).filter_histogram(0, h, 0)
        assert (out < 0).any()

    def test_drop_epoch(self):
        inj = FaultPlan((FaultSpec(-1, "drop-epoch", 1, 3),)).injector()
        assert [inj.drops_epoch(e) for e in range(4)] == [
            False, True, True, False,
        ]
        assert any("dropped" in e for e in inj.events)


# --------------------------------------------------------------------------
# guard invariants (property-style over random mixes)


def make_guard(**kw):
    kw.setdefault("num_banks", 16)
    kw.setdefault("bank_ways", 8)
    kw.setdefault("max_ways_per_core", 72)
    return DecisionGuard(8, **kw)


@pytest.fixture(scope="module")
def curves_by_name():
    return collect_profiles(config=CFG, accesses=6_000)


class TestGuardInvariants:
    def test_accepts_every_bank_aware_decision(self, curves_by_name):
        guard = make_guard()
        for mix in random_mixes(25, 8, seed=41):
            d = bank_aware_partition(
                [curves_by_name[n] for n in mix.names],
                num_banks=16, bank_ways=8, max_ways_per_core=72,
            )
            guard.validate_decision(d.ways, d.center_banks, d.pairs)
            guard.validate_vector(d.ways)

    def test_rejects_conservation_violations(self, curves_by_name):
        guard = make_guard()
        rng = rng_stream(7, "perturb")
        for mix in random_mixes(15, 8, seed=42):
            d = bank_aware_partition(
                [curves_by_name[n] for n in mix.names],
                num_banks=16, bank_ways=8, max_ways_per_core=72,
            )
            ways = list(d.ways)
            ways[int(rng.integers(0, 8))] += int(rng.integers(1, 9))
            with pytest.raises(PartitionInvariantError):
                guard.validate_vector(ways)

    def test_rejects_transfers_outside_a_pair(self, curves_by_name):
        """Moving ways between cores keeps conservation but must break a
        structural rule — unless both cores share one Local-bank pair."""
        guard = make_guard()
        rng = rng_stream(8, "transfer")
        checked = 0
        for mix in random_mixes(40, 8, seed=43):
            d = bank_aware_partition(
                [curves_by_name[n] for n in mix.names],
                num_banks=16, bank_ways=8, max_ways_per_core=72,
            )
            src, dst = (int(x) for x in rng.choice(8, size=2, replace=False))
            if (src, dst) in d.pairs or (dst, src) in d.pairs:
                continue  # intra-pair transfers can be legitimately valid
            ways = list(d.ways)
            if ways[src] <= 1 or ways[dst] + 1 > 72:
                continue
            ways[src] -= 1
            ways[dst] += 1
            with pytest.raises(PartitionInvariantError):
                guard.validate_decision(ways, d.center_banks, d.pairs)
            checked += 1
        assert checked >= 20  # the property was actually exercised

    def test_accepts_intra_pair_transfers(self):
        # pair (0,1) splitting two Local banks 6/10 vs 5/11: both valid
        base = dict(center_banks=(0, 0, 1, 1, 1, 1, 2, 2), pairs=((0, 1),))
        guard = make_guard()
        for split in ((6, 10), (5, 11), (1, 15)):
            ways = split + (16, 16, 16, 16, 24, 24)
            guard.validate_decision(ways, **base)

    def test_rejects_cap_violation(self):
        guard = make_guard()
        with pytest.raises(PartitionInvariantError, match="capacity cap"):
            guard.validate_vector([73, 1, 1, 1, 1, 1, 25, 25])

    def test_rejects_starved_core(self):
        guard = make_guard()
        with pytest.raises(PartitionInvariantError, match="minimum"):
            guard.validate_vector([0, 32, 16, 16, 16, 16, 16, 16])

    def test_rejects_fractional_ways(self):
        guard = make_guard()
        with pytest.raises(PartitionInvariantError, match="fractional"):
            guard.validate_vector([16.5, 15.5, 16, 16, 16, 16, 16, 16])

    def test_rejects_non_adjacent_pair(self):
        guard = make_guard()
        ways = (6, 16, 10, 16, 16, 16, 24, 24)
        centers = (0, 1, 0, 1, 1, 1, 2, 2)
        with pytest.raises(PartitionInvariantError, match="Rule 3"):
            guard.validate_decision(ways, centers, ((0, 2),))

    def test_rejects_center_core_in_pair(self):
        guard = make_guard()
        ways = (24, 8, 16, 16, 16, 16, 16, 16)
        centers = (1, 0, 1, 1, 1, 1, 1, 2)
        with pytest.raises(PartitionInvariantError, match="Rule 2"):
            guard.validate_decision(ways, centers, ((0, 1),))

    def test_rejects_wrong_center_way_count(self):
        guard = make_guard()
        # core 0 claims 1 Center bank but owns 12 ways (not 16)
        ways = (12, 20, 16, 16, 16, 16, 16, 16)
        centers = (1, 1, 1, 1, 1, 1, 1, 1)
        with pytest.raises(PartitionInvariantError, match="Rule 1/2"):
            guard.validate_decision(ways, centers, ())

    def test_constructor_validation(self):
        with pytest.raises(ConfigError):
            DecisionGuard(0, num_banks=16, bank_ways=8, max_ways_per_core=72)
        with pytest.raises(ConfigError):
            make_guard(min_ways=0)
        with pytest.raises(ConfigError):
            make_guard(hysteresis=0)
        with pytest.raises(ConfigError):
            make_guard(degrade_after=0)


class TestGuardHealthChecks:
    def test_accepts_healthy_histogram(self):
        guard = make_guard()
        curve = guard.checked_curve("w", 0, np.full(9, 50.0),
                                    min_observations=10)
        assert curve.total_accesses == pytest.approx(450.0)

    def test_too_few_observations(self):
        guard = make_guard()
        with pytest.raises(ProfilerFault, match="observations"):
            guard.checked_curve("w", 2, np.full(9, 1.0), min_observations=100)

    def test_negative_counters(self):
        guard = make_guard()
        h = np.full(9, 50.0)
        h[3] = -10.0
        with pytest.raises(ProfilerFault, match="negative"):
            guard.checked_curve("w", 1, h)

    def test_non_finite_counters(self):
        guard = make_guard()
        h = np.full(9, 50.0)
        h[0] = np.nan
        with pytest.raises(ProfilerFault, match="non-finite"):
            guard.checked_curve("w", 1, h)

    def test_fault_carries_core(self):
        guard = make_guard()
        with pytest.raises(ProfilerFault) as info:
            guard.checked_curve("w", 5, np.zeros(9), min_observations=1)
        assert info.value.core == 5


class TestGuardLadder:
    def test_descends_and_recovers(self):
        guard = make_guard(degrade_after=2, hysteresis=2)
        err = ProfilerFault("boom")
        assert guard.note_failure(1.0, err) is DegradedMode.NORMAL
        assert guard.note_failure(2.0, err) is DegradedMode.EQUAL_SHARE
        assert guard.note_failure(3.0, err) is DegradedMode.EQUAL_SHARE
        assert guard.note_failure(4.0, err) is DegradedMode.FROZEN
        # recovery: one rung per `hysteresis` consecutive healthy epochs
        assert guard.note_healthy(5.0) is DegradedMode.FROZEN
        assert guard.note_healthy(6.0) is DegradedMode.EQUAL_SHARE
        assert guard.note_healthy(7.0) is DegradedMode.EQUAL_SHARE
        assert guard.note_healthy(8.0) is DegradedMode.NORMAL

    def test_intermittent_faults_do_not_degrade(self):
        guard = make_guard(degrade_after=3)
        err = ProfilerFault("flaky")
        for t in range(20):
            if t % 2:
                mode = guard.note_failure(float(t), err)
            else:
                mode = guard.note_healthy(float(t))
            assert mode is DegradedMode.NORMAL

    def test_events_logged(self):
        guard = make_guard(degrade_after=1, hysteresis=1)
        guard.note_failure(1.0, ProfilerFault("x"))
        guard.note_healthy(2.0)
        kinds = [e.kind for e in guard.events]
        assert kinds == ["fault", "degrade", "recover"]
        assert guard.fallback_count == 1


# --------------------------------------------------------------------------
# controller integration


def make_controller(*, guard=None, injector=None, min_obs=10, **kw):
    l2cfg = L2Config(num_banks=16, bank_ways=8, sets_per_bank=64)
    l2 = NucaL2(l2cfg, 8)
    profilers = [MSAProfiler(l2cfg.sets_per_bank, 72) for _ in range(8)]
    names = ["w%d" % i for i in range(8)]
    ctrl = EpochController(
        l2, profilers, names,
        epoch_cycles=kw.pop("epoch", 1000.0),
        max_ways_per_core=72,
        min_observations=min_obs,
        guard=guard,
        fault_injector=injector,
        **kw,
    )
    return ctrl, l2, profilers


def feed(profilers, accesses=400):
    for i, prof in enumerate(profilers):
        trace = generate_trace(
            get("vpr" if i % 2 else "gzip"), accesses, 64, seed=i
        )
        prof.observe_many(trace.lines)


class TestControllerValidation:
    def test_negative_min_observations_rejected(self):
        with pytest.raises(ConfigError):
            make_controller(min_obs=-1)

    def test_max_ways_rejected(self):
        l2 = NucaL2(L2Config(num_banks=16, bank_ways=8, sets_per_bank=64), 8)
        profs = [MSAProfiler(64, 72) for _ in range(8)]
        with pytest.raises(ConfigError):
            EpochController(l2, profs, ["w"] * 8, epoch_cycles=1000.0,
                            max_ways_per_core=0)

    def test_typed_errors_are_valueerrors(self):
        with pytest.raises(ValueError):  # backwards compatibility
            make_controller(min_obs=-1)


class TestGuardedController:
    def test_fault_free_guarded_run_matches_unguarded(self):
        results = []
        for use_guard in (False, True):
            guard = make_guard() if use_guard else None
            ctrl, _, profs = make_controller(guard=guard)
            feed(profs)
            assert ctrl.tick(1000.0)
            results.append(ctrl.last_decision.ways)
        assert results[0] == results[1]

    def test_zero_fault_holds_last_known_good(self):
        plan = FaultPlan((FaultSpec(0, "zero", 1), FaultSpec(1, "zero", 1)))
        guard = make_guard(degrade_after=3)
        ctrl, l2, profs = make_controller(guard=guard, injector=plan.injector())
        feed(profs)
        assert ctrl.tick(1000.0)  # epoch 0: healthy, decision installed
        good = ctrl.last_decision.ways
        before = l2.partition_map
        feed(profs)
        assert not ctrl.tick(2000.0)  # epoch 1: faulted, contained
        assert ctrl.last_decision.ways == good  # history unchanged
        assert l2.partition_map is before  # nothing reinstalled
        assert guard.events and guard.events[-1].kind == "fallback"

    def test_sustained_fault_descends_to_equal_then_frozen(self):
        plan = FaultPlan((FaultSpec(0, "zero", 0),))
        guard = make_guard(degrade_after=2, hysteresis=1)
        ctrl, l2, profs = make_controller(guard=guard, injector=plan.injector())
        now = 1000.0
        for _ in range(2):  # two strikes -> EQUAL_SHARE
            feed(profs)
            assert not ctrl.tick(now)
            now += 1000.0
        assert guard.mode is DegradedMode.EQUAL_SHARE
        assert l2.partition_map is not None
        assert set(l2.partition_map.way_vector().values()) == {16}
        for _ in range(2):  # two more -> FROZEN
            feed(profs)
            ctrl.tick(now)
            now += 1000.0
        assert guard.mode is DegradedMode.FROZEN
        assert ctrl.history == []  # never trusted a faulty decision

    def test_recovery_after_fault_clears(self):
        plan = FaultPlan((FaultSpec(0, "zero", 0, 2),))  # epochs 0-1 only
        guard = make_guard(degrade_after=1, hysteresis=1)
        ctrl, _, profs = make_controller(guard=guard, injector=plan.injector())
        now = 1000.0
        for _ in range(2):
            feed(profs)
            assert not ctrl.tick(now)
            now += 1000.0
        assert guard.mode is not DegradedMode.NORMAL
        installed = 0
        for _ in range(4):
            feed(profs)
            installed += ctrl.tick(now)
            now += 1000.0
        assert guard.mode is DegradedMode.NORMAL
        assert installed >= 1  # fresh decisions resumed
        assert any(e.kind == "recover" for e in guard.events)

    def test_drop_epoch_fault_skips_boundary(self):
        plan = FaultPlan((FaultSpec(-1, "drop-epoch", 0, 1),))
        ctrl, _, profs = make_controller(guard=make_guard(),
                                         injector=plan.injector())
        feed(profs)
        assert not ctrl.tick(1000.0)  # dropped
        assert ctrl.history == []
        feed(profs)
        assert ctrl.tick(2000.0)  # next boundary fires normally

    def test_degenerate_fault_detected(self):
        plan = FaultPlan((FaultSpec(3, "degenerate", 0),))
        guard = make_guard()
        ctrl, _, profs = make_controller(guard=guard, injector=plan.injector())
        feed(profs)
        assert not ctrl.tick(1000.0)
        assert any("core 3" in e.detail for e in guard.events)


class TestFaultedSimulation:
    """Acceptance: corrupted profilers on 2 of 8 cores are contained."""

    SETTINGS = RunSettings(duration_cycles=500_000.0, seed=3)

    def test_faulted_run_completes_and_healthy_cores_unharmed(self):
        mix = TABLE_III_SETS[1]
        clean = run_mix(mix, "bank-aware", CFG, self.SETTINGS)
        plan = FaultPlan.parse("0:zero@1,4:degenerate@1", seed=5)
        faulted = run_mix(
            mix, "bank-aware", CFG,
            RunSettings(duration_cycles=500_000.0, seed=3, fault_plan=plan),
        )
        assert faulted.guard_events, "guard must log the fallbacks"
        kinds = {e[1] for e in faulted.guard_events}
        assert "fault" in kinds and "fallback" in kinds
        for core in range(2, 4):  # healthy cores far from the faulted pair
            a, b = clean.cores[core], faulted.cores[core]
            assert b.miss_rate == pytest.approx(a.miss_rate, abs=0.05)


# --------------------------------------------------------------------------
# checkpoints


class TestCheckpointFile:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "c.json")
        save_checkpoint(path, "k", {"seed": 1}, [{"x": 1.5}])
        meta, completed = load_checkpoint(path, "k")
        assert meta == {"seed": 1}
        assert completed == [{"x": 1.5}]

    def test_atomic_no_temp_left(self, tmp_path):
        path = str(tmp_path / "c.json")
        save_checkpoint(path, "k", {}, [])
        assert os.listdir(tmp_path) == ["c.json"]

    def test_truncated_json_rejected(self, tmp_path):
        path = tmp_path / "c.json"
        save_checkpoint(str(path), "k", {}, [{"x": 1}])
        path.write_text(path.read_text()[:-20])
        with pytest.raises(CheckpointCorrupt, match="JSON"):
            load_checkpoint(str(path), "k")

    def test_tampered_payload_rejected(self, tmp_path):
        path = tmp_path / "c.json"
        save_checkpoint(str(path), "k", {}, [{"x": 1}])
        data = json.loads(path.read_text())
        data["completed"][0]["x"] = 2
        path.write_text(json.dumps(data))
        with pytest.raises(CheckpointCorrupt, match="checksum"):
            load_checkpoint(str(path), "k")

    def test_wrong_kind_rejected(self, tmp_path):
        path = str(tmp_path / "c.json")
        save_checkpoint(path, "monte-carlo", {}, [])
        with pytest.raises(CheckpointCorrupt, match="monte-carlo"):
            load_checkpoint(path, "detailed-sweep")

    def test_not_a_checkpoint_rejected(self, tmp_path):
        path = tmp_path / "c.json"
        path.write_text('{"hello": "world"}')
        with pytest.raises(CheckpointCorrupt):
            load_checkpoint(str(path), "k")

    def test_meta_mismatch_refused_on_resume(self, tmp_path):
        path = str(tmp_path / "c.json")
        SweepCheckpoint(path, "k", {"seed": 1}).save()
        with pytest.raises(CheckpointCorrupt, match="refusing"):
            SweepCheckpoint(path, "k", {"seed": 2}, resume=True)

    def test_resume_without_file_starts_fresh(self, tmp_path):
        ckpt = SweepCheckpoint(str(tmp_path / "no.json"), "k", {}, resume=True)
        assert len(ckpt) == 0

    def test_periodic_snapshots(self, tmp_path):
        path = str(tmp_path / "c.json")
        ckpt = SweepCheckpoint(path, "k", {}, every=2)
        ckpt.record({"i": 0})
        assert not os.path.exists(path)
        ckpt.record({"i": 1})
        assert load_checkpoint(path, "k")[1] == [{"i": 0}, {"i": 1}]

    def test_save_preserves_previous_generation_as_bak(self, tmp_path):
        path = str(tmp_path / "c.json")
        save_checkpoint(path, "k", {}, [{"i": 0}])
        assert not os.path.exists(backup_path(path))  # nothing to preserve
        save_checkpoint(path, "k", {}, [{"i": 0}, {"i": 1}])
        assert load_checkpoint(backup_path(path), "k")[1] == [{"i": 0}]

    def test_damaged_primary_falls_back_to_bak(self, tmp_path):
        path = str(tmp_path / "c.json")
        save_checkpoint(path, "k", {"seed": 7}, [{"i": 0}])
        save_checkpoint(path, "k", {"seed": 7}, [{"i": 0}, {"i": 1}])
        with open(path, "r+b") as fh:
            fh.truncate(os.path.getsize(path) // 2)  # torn by other tools
        meta, completed = load_checkpoint(path, "k")
        assert meta == {"seed": 7}
        assert completed == [{"i": 0}]  # the previous generation

    def test_both_generations_damaged_raises(self, tmp_path):
        path = str(tmp_path / "c.json")
        save_checkpoint(path, "k", {}, [{"i": 0}])
        save_checkpoint(path, "k", {}, [{"i": 0}, {"i": 1}])
        for victim in (path, backup_path(path)):
            with open(victim, "r+b") as fh:
                fh.truncate(10)
        with pytest.raises(CheckpointCorrupt, match="both unreadable"):
            load_checkpoint(path, "k")

    def test_damaged_primary_without_bak_raises_original(self, tmp_path):
        path = str(tmp_path / "c.json")
        save_checkpoint(path, "k", {}, [])  # single save: no .bak yet
        with open(path, "r+b") as fh:
            fh.truncate(10)
        with pytest.raises(CheckpointCorrupt, match="JSON"):
            load_checkpoint(path, "k")

    def test_corrupt_error_alias_is_the_same_class(self):
        assert CheckpointCorruptError is CheckpointCorrupt


class TestMonteCarloResume:
    def test_killed_and_resumed_sweep_is_bit_identical(
        self, tmp_path, curves_by_name
    ):
        path = str(tmp_path / "mc.json")
        baseline = run_monte_carlo(20, CFG, curves=curves_by_name, seed=77)

        class Killer(dict):
            """Curve store that dies mid-sweep, like a kill -9 would."""

            def __init__(self, inner, fuse):
                super().__init__(inner)
                self.fuse = fuse

            def __getitem__(self, key):
                self.fuse -= 1
                if self.fuse <= 0:
                    raise KeyboardInterrupt
                return super().__getitem__(key)

        with pytest.raises(KeyboardInterrupt):
            run_monte_carlo(
                20, CFG, curves=Killer(curves_by_name, 60), seed=77,
                checkpoint_path=path,
            )
        _, completed = load_checkpoint(path, "monte-carlo")
        assert 0 < len(completed) < 20  # progress survived the kill
        resumed = run_monte_carlo(
            20, CFG, curves=curves_by_name, seed=77,
            checkpoint_path=path, resume=True,
        )
        assert len(resumed.points) == 20
        for a, b in zip(baseline.points, resumed.points):
            assert a.mix.names == b.mix.names
            assert a.equal_misses == b.equal_misses  # exact, not approx
            assert a.unrestricted_misses == b.unrestricted_misses
            assert a.bank_aware_misses == b.bank_aware_misses
            assert a.bank_aware_ways == b.bank_aware_ways

    def test_resume_into_longer_sweep(self, tmp_path, curves_by_name):
        path = str(tmp_path / "mc.json")
        run_monte_carlo(6, CFG, curves=curves_by_name, seed=5,
                        checkpoint_path=path)
        longer = run_monte_carlo(10, CFG, curves=curves_by_name, seed=5,
                                 checkpoint_path=path, resume=True)
        fresh = run_monte_carlo(10, CFG, curves=curves_by_name, seed=5)
        assert [p.bank_aware_misses for p in longer.points] == [
            p.bank_aware_misses for p in fresh.points
        ]

    def test_resume_with_different_seed_refused(self, tmp_path, curves_by_name):
        path = str(tmp_path / "mc.json")
        run_monte_carlo(4, CFG, curves=curves_by_name, seed=5,
                        checkpoint_path=path)
        with pytest.raises(CheckpointCorrupt):
            run_monte_carlo(4, CFG, curves=curves_by_name, seed=6,
                            checkpoint_path=path, resume=True)


class TestDetailedSweepResume:
    SETTINGS = RunSettings(duration_cycles=300_000.0, seed=3)

    def test_sweep_resumes_identically(self, tmp_path, monkeypatch):
        import repro.sim.runner as runner_mod

        mixes = TABLE_III_SETS[:2]
        path = str(tmp_path / "sweep.json")
        schemes = ("equal-partitions", "bank-aware")
        full = run_sweep(mixes, CFG, self.SETTINGS, schemes=schemes)

        real = runner_mod._sweep_run
        calls = {"n": 0}

        def dying(item):  # killed after the first mix's schemes complete
            calls["n"] += 1
            if calls["n"] > len(schemes):
                raise KeyboardInterrupt
            return real(item)

        monkeypatch.setattr(runner_mod, "_sweep_run", dying)
        with pytest.raises(KeyboardInterrupt):
            run_sweep(mixes, CFG, self.SETTINGS, schemes=schemes,
                      checkpoint_path=path)
        monkeypatch.setattr(runner_mod, "_sweep_run", real)
        assert len(load_checkpoint(path, "detailed-sweep")[1]) == 1
        resumed = run_sweep(mixes, CFG, self.SETTINGS, schemes=schemes,
                            checkpoint_path=path, resume=True)
        for a, b in zip(full, resumed):
            for scheme in a.results:
                ra, rb = a.results[scheme], b.results[scheme]
                assert [c.cycles for c in ra.cores] == [
                    c.cycles for c in rb.cores
                ]
                assert ra.total_misses == rb.total_misses
                assert ra.epochs == rb.epochs


# --------------------------------------------------------------------------
# resilience config


class TestResilienceConfig:
    def test_defaults_validate(self):
        ResilienceConfig().validate()
        assert CFG.resilience.guard_enabled

    @pytest.mark.parametrize("kw", [
        {"hysteresis_epochs": 0}, {"degrade_after": 0},
        {"min_ways": 0}, {"checkpoint_every": 0},
    ])
    def test_bad_values_rejected(self, kw):
        with pytest.raises(ValueError):
            ResilienceConfig(**kw).validate()
