"""Directory MESI protocol: transitions, invariants, value propagation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coherence.directory import Directory, DirectoryEntry, DirState
from repro.coherence.mesi import CacheState, MESISystem
from repro.coherence.messages import DIRECTORY, Message, MessageType


class TestDirectory:
    def test_entries_default_invalid(self):
        d = Directory(4)
        assert d.peek(5).state is DirState.I

    def test_invariant_checks(self):
        e = DirectoryEntry(state=DirState.M)
        with pytest.raises(AssertionError):
            e.check_invariants()  # M with no owner
        e2 = DirectoryEntry(state=DirState.S, sharers={1}, owner=2)
        with pytest.raises(AssertionError):
            e2.check_invariants()

    def test_tracked_lines(self):
        d = Directory(2)
        ent = d.entry(7)
        ent.state = DirState.M
        ent.owner = 0
        assert d.tracked_lines() == [7]


class TestMessages:
    def test_self_message_rejected(self):
        with pytest.raises(ValueError):
            Message(MessageType.DATA, 0, 1, 1)


class TestMESITransitions:
    def test_cold_load_gets_exclusive(self):
        sys_ = MESISystem(2)
        sys_.load(0, 10)
        assert sys_.state_of(0, 10) is CacheState.E

    def test_second_reader_shares(self):
        sys_ = MESISystem(2)
        sys_.load(0, 10)
        sys_.load(1, 10)
        assert sys_.state_of(0, 10) is CacheState.S
        assert sys_.state_of(1, 10) is CacheState.S

    def test_store_invalidates_sharers(self):
        sys_ = MESISystem(3)
        for core in range(3):
            sys_.load(core, 10)
        sys_.store(0, 10, 42)
        assert sys_.state_of(0, 10) is CacheState.M
        assert sys_.state_of(1, 10) is CacheState.I
        assert sys_.state_of(2, 10) is CacheState.I

    def test_silent_e_to_m_upgrade(self):
        sys_ = MESISystem(2)
        sys_.load(0, 10)
        msgs_before = sys_.stats.message_count
        sys_.store(0, 10, 1)
        assert sys_.state_of(0, 10) is CacheState.M
        assert sys_.stats.message_count == msgs_before  # silent upgrade

    def test_load_recalls_modified_value(self):
        sys_ = MESISystem(2)
        sys_.store(0, 10, 99)
        assert sys_.load(1, 10) == 99
        assert sys_.state_of(0, 10) is CacheState.S

    def test_store_steals_ownership(self):
        sys_ = MESISystem(2)
        sys_.store(0, 10, 1)
        sys_.store(1, 10, 2)
        assert sys_.state_of(0, 10) is CacheState.I
        assert sys_.load(0, 10) == 2

    def test_eviction_writes_back(self):
        sys_ = MESISystem(2)
        sys_.store(0, 10, 7)
        sys_.evict(0, 10)
        assert sys_.memory[10] == 7
        assert sys_.load(1, 10) == 7

    def test_clean_eviction_no_writeback(self):
        sys_ = MESISystem(2)
        sys_.load(0, 10)
        sys_.load(1, 10)
        wb = sys_.stats.writebacks
        sys_.evict(0, 10)
        assert sys_.stats.writebacks == wb

    def test_evict_untouched_is_noop(self):
        sys_ = MESISystem(2)
        sys_.evict(0, 123)  # no crash, no state

    def test_last_sharer_eviction_empties_entry(self):
        sys_ = MESISystem(2)
        sys_.load(0, 10)
        sys_.load(1, 10)
        sys_.evict(0, 10)
        sys_.evict(1, 10)
        assert sys_.directory.entry(10).state is DirState.I

    def test_bounds(self):
        with pytest.raises(IndexError):
            MESISystem(2).load(2, 0)


class TestCoherenceContract:
    def test_reads_see_latest_write(self):
        sys_ = MESISystem(4)
        sys_.store(0, 5, 1)
        sys_.store(1, 5, 2)
        sys_.store(2, 5, 3)
        for core in range(4):
            assert sys_.load(core, 5) == 3

    op = st.tuples(
        st.sampled_from(["load", "store", "evict"]),
        st.integers(0, 3),  # core
        st.integers(0, 5),  # line
        st.integers(1, 1000),  # value
    )

    @given(st.lists(op, min_size=1, max_size=120))
    @settings(max_examples=60, deadline=None)
    def test_random_ops_preserve_invariants_and_values(self, ops):
        """Safety: single-writer/multiple-reader always; liveness contract:
        a load returns the value of the globally most recent store."""
        sys_ = MESISystem(4)
        latest: dict[int, int] = {}
        for kind, core, line, value in ops:
            if kind == "load":
                got = sys_.load(core, line)
                assert got == latest.get(line, 0)
            elif kind == "store":
                sys_.store(core, line, value)
                latest[line] = value
            else:
                sys_.evict(core, line)
            sys_.check_coherence()

    def test_invalidation_counter(self):
        sys_ = MESISystem(3)
        sys_.load(1, 9)
        sys_.load(2, 9)
        sys_.store(0, 9, 1)
        assert sys_.stats.invalidations >= 2

    def test_traffic_recorded(self):
        sys_ = MESISystem(2)
        sys_.load(0, 1)
        kinds = [m.mtype for m in sys_.stats.messages]
        assert MessageType.GET_S in kinds
        assert all(
            m.source == DIRECTORY or m.dest == DIRECTORY or True
            for m in sys_.stats.messages
        )
