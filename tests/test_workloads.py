"""Synthetic workload generators and the SPEC-like suite."""

import numpy as np
import pytest

from repro.profiling.miss_curve import MissCurve
from repro.profiling.msa import MSAProfiler
from repro.workloads import (
    ALL_NAMES,
    FP_NAMES,
    INTEGER_NAMES,
    TABLE_III_SETS,
    Mix,
    PhasedWorkload,
    ReusePool,
    WorkloadSpec,
    generate_trace,
    get,
    random_mixes,
    state_space_size,
    suite,
)

NSETS = 64


class TestReusePool:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ReusePool(0, 1.0)
        with pytest.raises(ValueError):
            ReusePool(4, 0.0)
        with pytest.raises(ValueError):
            ReusePool(4, 1.0, zipf=-1.0)


class TestWorkloadSpec:
    def test_mean_gap_from_apki(self):
        spec = WorkloadSpec("x", (ReusePool(2, 1.0),), l2_apki=50)
        assert spec.mean_gap == pytest.approx(19.0)

    def test_component_weights_normalised(self):
        spec = WorkloadSpec(
            "x", (ReusePool(2, 3.0), ReusePool(4, 1.0)), stream_weight=1.0
        )
        w = spec.component_weights()
        assert w.sum() == pytest.approx(1.0)
        assert w[0] == pytest.approx(0.6)

    def test_single_pool_tuple_coercion(self):
        spec = WorkloadSpec("x", ReusePool(2, 1.0))  # forgiven missing comma
        assert isinstance(spec.pools, tuple)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            WorkloadSpec("x", ())

    def test_rejects_bad_write_fraction(self):
        with pytest.raises(ValueError):
            WorkloadSpec("x", (ReusePool(2, 1.0),), write_fraction=1.5)


class TestGenerator:
    def test_deterministic(self):
        spec = get("gzip")
        a = generate_trace(spec, 1000, NSETS, seed=3)
        b = generate_trace(spec, 1000, NSETS, seed=3)
        assert np.array_equal(a.addresses, b.addresses)
        assert np.array_equal(a.gaps, b.gaps)

    def test_seed_changes_trace(self):
        spec = get("gzip")
        a = generate_trace(spec, 1000, NSETS, seed=3)
        b = generate_trace(spec, 1000, NSETS, seed=4)
        assert not np.array_equal(a.addresses, b.addresses)

    def test_pool_footprint_scales_with_sets(self):
        spec = WorkloadSpec("x", (ReusePool(4, 1.0),), l2_apki=50)
        t = generate_trace(spec, 20_000, NSETS, seed=1)
        assert t.footprint_lines() <= 4 * NSETS
        assert t.footprint_lines() > 3 * NSETS  # nearly all lines touched

    def test_stream_never_reuses(self):
        spec = WorkloadSpec("s", (), stream_weight=1.0, l2_apki=50)
        t = generate_trace(spec, 5000, NSETS, seed=1)
        assert t.footprint_lines() == 5000

    def test_write_fraction_approx(self):
        spec = WorkloadSpec(
            "w", (ReusePool(4, 1.0),), write_fraction=0.5, l2_apki=50
        )
        t = generate_trace(spec, 20_000, NSETS, seed=1)
        assert 0.45 < t.is_write.mean() < 0.55

    def test_mean_gap_approx(self):
        spec = WorkloadSpec("g", (ReusePool(4, 1.0),), l2_apki=20)
        t = generate_trace(spec, 20_000, NSETS, seed=1)
        assert abs(float(t.gaps.mean()) - spec.mean_gap) < 2.0

    def test_base_address_offsets_whole_trace(self):
        spec = get("gzip")
        a = generate_trace(spec, 100, NSETS, seed=1)
        b = generate_trace(spec, 100, NSETS, seed=1, base_address=1 << 30)
        assert np.array_equal(b.addresses - a.addresses, np.full(100, 1 << 30, dtype=np.uint64))

    def test_sets_covered_uniformly(self):
        spec = WorkloadSpec("u", (ReusePool(8, 1.0),), l2_apki=50)
        t = generate_trace(spec, 40_000, NSETS, seed=1)
        sets = t.lines % NSETS
        counts = np.bincount(sets.astype(int), minlength=NSETS)
        assert counts.min() > 0.5 * counts.mean()

    def test_zero_accesses(self):
        assert len(generate_trace(get("gzip"), 0, NSETS, seed=1)) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            generate_trace(get("gzip"), -1, NSETS)


class TestPhased:
    def test_phases_concatenate(self):
        w = PhasedWorkload([(get("gzip"), 100), (get("mcf"), 50)])
        t = w.generate(NSETS, seed=1)
        assert len(t) == 150

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            PhasedWorkload([]).generate(NSETS)


class TestSuite:
    def test_26_workloads(self):
        assert len(suite()) == 26
        assert len(INTEGER_NAMES) == 12
        assert len(FP_NAMES) == 14
        assert set(ALL_NAMES) == set(suite())

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError):
            get("doom3")

    def test_specs_have_positive_parameters(self):
        for spec in suite().values():
            assert spec.l2_apki > 0
            assert spec.mlp >= 1
            assert spec.nonmem_cpi > 0
            assert 0 <= spec.stream_weight <= 1


def _curve(name: str, accesses=40_000, nsets=128) -> MissCurve:
    prof = MSAProfiler(nsets, 128)
    trace = generate_trace(get(name), accesses, nsets, seed=5)
    lines = trace.lines
    warm = len(lines) // 3
    prof.observe_many(lines[:warm])
    prof.reset()
    prof.observe_many(lines[warm:])
    return MissCurve.from_profiler(prof, name)


class TestFig3Shapes:
    """The paper's Fig. 3 qualitative behaviours must hold for the suite."""

    def test_sixtrack_saturates_by_8_ways(self):
        c = _curve("sixtrack")
        assert c.miss_ratio_at(8) < 0.15
        assert c.miss_ratio_at(2) > 0.4

    def test_applu_flat_after_knee_with_floor(self):
        c = _curve("applu")
        knee, flat = c.miss_ratio_at(16), c.miss_ratio_at(40)
        assert knee - flat < 0.05  # flat beyond the (inflated) knee
        assert flat > 0.3  # the streaming floor stays high
        assert c.miss_ratio_at(4) - knee > 0.25  # steep before it

    def test_bzip2_improves_gradually_to_45(self):
        c = _curve("bzip2", accesses=60_000)
        assert c.miss_ratio_at(16) - c.miss_ratio_at(32) > 0.1
        assert c.miss_ratio_at(32) - c.miss_ratio_at(48) > 0.05
        assert c.miss_ratio_at(48) < 0.25

    def test_small_footprint_workloads_satisfied_at_8(self):
        for name in ("gzip", "eon", "galgel", "gap"):
            c = _curve(name)
            assert c.miss_ratio_at(8) < 0.25, name

    def test_streamers_keep_high_floor(self):
        for name in ("swim", "mcf"):
            c = _curve(name)
            assert c.miss_ratio_at(72) > 0.4, name


class TestMixes:
    def test_state_space_matches_paper(self):
        # C(26 + 8 - 1, 8) — "approximately 14 million"
        assert state_space_size() == 13_884_156

    def test_table_iii_has_8_sets_of_8(self):
        assert len(TABLE_III_SETS) == 8
        assert all(len(m) == 8 for m in TABLE_III_SETS)

    def test_table_iii_set2_matches_paper(self):
        assert TABLE_III_SETS[1].names == (
            "crafty", "gap", "mcf", "art", "equake", "equake", "bzip2", "equake",
        )

    def test_random_mixes_deterministic(self):
        a = random_mixes(10, seed=1)
        b = random_mixes(10, seed=1)
        assert [m.names for m in a] == [m.names for m in b]

    def test_random_mixes_draw_with_repetition(self):
        mixes = random_mixes(200, seed=3)
        assert any(len(set(m.names)) < len(m.names) for m in mixes)

    def test_mix_validates_names(self):
        with pytest.raises(KeyError):
            Mix(("gzip", "nope"))

    def test_mix_specs(self):
        m = Mix(("gzip", "mcf"))
        assert [s.name for s in m.specs()] == ["gzip", "mcf"]
        assert str(m) == "gzip+mcf"
