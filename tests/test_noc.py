"""NoC floorplan, DNUCA latency model and bank contention."""

import pytest

from repro.config import L2Config
from repro.noc.contention import BankPort, ContentionModel
from repro.noc.latency import LatencyModel
from repro.noc.topology import Floorplan


class TestFloorplan:
    def test_local_center_split(self):
        fp = Floorplan()
        assert fp.num_centers == 8
        assert fp.is_local(0) and fp.is_local(7)
        assert not fp.is_local(8)

    def test_local_bank_of(self):
        fp = Floorplan()
        for core in range(8):
            assert fp.local_bank_of(core) == core
            assert fp.hops(core, core) == 0.0

    def test_max_hops_is_7(self):
        assert Floorplan().max_hops() == 7.0
        assert Floorplan().hops(0, 7) == 7.0

    def test_center_banks_cost_row_crossing(self):
        fp = Floorplan()
        for bank in range(8, 16):
            for core in range(8):
                assert fp.hops(core, bank) >= 1.0

    def test_center_variation_smaller_than_local(self):
        """Paper: Center banks have higher average latency than the own
        Local bank but much smaller variation across cores."""
        fp = Floorplan()
        local_spread = [
            max(fp.hops(c, b) for c in range(8)) - min(fp.hops(c, b) for c in range(8))
            for b in range(8)
        ]
        center_spread = [
            max(fp.hops(c, b) for c in range(8)) - min(fp.hops(c, b) for c in range(8))
            for b in range(8, 16)
        ]
        assert max(center_spread) < max(local_spread)

    def test_bounds_checked(self):
        fp = Floorplan()
        with pytest.raises(IndexError):
            fp.hops(8, 0)
        with pytest.raises(IndexError):
            fp.hops(0, 16)

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            Floorplan(num_cores=8, num_banks=4)


class TestLatencyModel:
    def test_paper_bounds_10_to_70(self):
        lm = LatencyModel()
        table = lm.latency_table()
        flat = [v for row in table for v in row]
        assert min(flat) == 10
        assert max(flat) == 70

    def test_own_local_bank_is_10(self):
        lm = LatencyModel()
        for core in range(8):
            assert lm.bank_latency(core, core) == 10

    def test_far_local_bank_is_70(self):
        lm = LatencyModel()
        assert lm.bank_latency(0, 7) == 70
        assert lm.bank_latency(7, 0) == 70

    def test_monotonic_in_distance(self):
        lm = LatencyModel()
        lats = [lm.bank_latency(0, b) for b in range(8)]
        assert lats == sorted(lats)

    def test_from_config(self):
        lm = LatencyModel.from_config(L2Config(), num_cores=8)
        assert lm.min_latency == 10 and lm.max_latency == 70

    def test_bad_bounds_rejected(self):
        with pytest.raises(ValueError):
            LatencyModel(min_latency=50, max_latency=40)


class TestContention:
    def test_idle_port_no_delay(self):
        port = BankPort(busy_cycles=4)
        assert port.request(100.0) == 0.0

    def test_back_to_back_queues(self):
        port = BankPort(busy_cycles=4)
        port.request(100.0)
        assert port.request(101.0) == 3.0  # busy until 104
        assert port.request(101.0) == 7.0  # now busy until 108

    def test_gap_clears_queue(self):
        port = BankPort(busy_cycles=4)
        port.request(0.0)
        assert port.request(50.0) == 0.0

    def test_mean_queue_delay(self):
        port = BankPort(busy_cycles=10)
        port.request(0.0)
        port.request(0.0)
        assert port.mean_queue_delay == pytest.approx(5.0)

    def test_model_reset(self):
        m = ContentionModel(4)
        m.bank_delay(0, 0.0)
        m.memory_delay(0.0)
        m.reset()
        assert m.ports[0].served == 0
        assert m.memory_port.next_free == 0.0

    def test_memory_bandwidth_throttles(self):
        m = ContentionModel(4, memory_busy_cycles=4)
        delays = [m.memory_delay(0.0) for _ in range(10)]
        assert delays == [i * 4.0 for i in range(10)]

    def test_bad_geometry(self):
        with pytest.raises(ValueError):
            ContentionModel(0)
