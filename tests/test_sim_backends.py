"""Bit-identity gate between the reference and batched sim backends.

The batched struct-of-arrays engine (``repro.sim.batched``) must leave
the system in *exactly* the state the reference object-model event loop
produces — same ``SystemResult`` (down to float bit patterns via
``to_dict``), same canonical telemetry stream, same post-run object
state.  These tests sweep the configuration space the engine special-
cases: scheme (shared vs partitioned), data placement, profiler kind,
measurement-window boundaries and hard cycle cutoffs, plus a
seed-randomized chaos sweep.  Satellite coverage for the
``results()`` idempotency fix and the flat ``NucaStats`` counters
lives here too.
"""

import random

import pytest

from repro.cache.nuca import NucaStats
from repro.config import scaled_config
from repro.errors import ConfigError
from repro.sim.runner import RunSettings, build_system, run_mix
from repro.sim.system import SIM_BACKENDS
from repro.workloads import TABLE_III_SETS, Mix

CFG = scaled_config(32, epoch_cycles=100_000)  # tiny 64-set banks for speed
MIX = Mix(("gzip", "eon", "mcf", "galgel", "perlbmk", "crafty", "gap", "swim"))


def run_pair(scheme, mix=MIX, cfg=CFG, **kwargs):
    """The same simulation on both backends; returns the two results."""
    out = []
    for backend in SIM_BACKENDS:
        st = RunSettings(sim_backend=backend, **kwargs)
        out.append(run_mix(mix, scheme, cfg, st))
    return out


def assert_identical(ref, batched):
    assert ref.to_dict() == batched.to_dict()
    assert [dict(e) for e in ref.events] == [dict(e) for e in batched.events]


class TestBackendSelection:
    def test_backend_validated(self):
        with pytest.raises(ConfigError):
            build_system(
                MIX, "no-partitions", CFG,
                RunSettings(duration_cycles=100_000.0, sim_backend="turbo"),
            )

    def test_backends_exported(self):
        assert SIM_BACKENDS == ("reference", "batched")


class TestSchemeMatrix:
    """scheme x placement x profiler_kind, traced so the canonical event
    streams are compared alongside the results."""

    @pytest.mark.parametrize("scheme,placement,shared_placement", [
        ("no-partitions", "dnuca", "dnuca"),
        ("no-partitions", "dnuca", "parallel"),
        ("no-partitions", "dnuca", "hash"),
        ("equal-partitions", "dnuca", "dnuca"),
        ("equal-partitions", "parallel", "dnuca"),
        ("equal-partitions", "hash", "dnuca"),
        ("bank-aware", "dnuca", "dnuca"),
        ("bank-aware", "parallel", "dnuca"),
        ("bank-aware", "hash", "dnuca"),
    ])
    def test_placements_identical(self, scheme, placement, shared_placement):
        ref, batched = run_pair(
            scheme, duration_cycles=150_000.0, seed=11,
            placement=placement, shared_placement=shared_placement,
            trace=True,
        )
        assert_identical(ref, batched)

    @pytest.mark.parametrize("profiler_kind", ["sampled", "exact"])
    def test_profilers_identical(self, profiler_kind):
        ref, batched = run_pair(
            "bank-aware", duration_cycles=150_000.0, seed=5,
            profiler_kind=profiler_kind, trace=True,
        )
        assert_identical(ref, batched)

    def test_sanitized_run_identical(self):
        # sanitize forces a full cache check-in before every controller
        # tick, exercising the flat-image write-back mid-run
        ref, batched = run_pair(
            "bank-aware", duration_cycles=150_000.0, seed=9,
            sanitize=True, trace=True,
        )
        assert_identical(ref, batched)


class TestWindowBoundaries:
    @pytest.mark.parametrize("warmup_fraction", [0.0, 0.5, 0.9])
    def test_warmup_crossings_identical(self, warmup_fraction):
        ref, batched = run_pair(
            "bank-aware", duration_cycles=150_000.0, seed=4,
            warmup_fraction=warmup_fraction, trace=True,
        )
        assert_identical(ref, batched)

    @pytest.mark.parametrize("max_cycles", [
        90_000.0,    # mid-epoch cutoff
        100_000.0,   # exactly on a controller tick
        150_000.0,   # run to the window end
    ])
    def test_max_cycles_cutoffs_identical(self, max_cycles):
        results = []
        for backend in SIM_BACKENDS:
            system = build_system(
                MIX, "bank-aware", CFG,
                RunSettings(
                    duration_cycles=150_000.0, seed=6, sim_backend=backend
                ),
            )
            system.set_measurement_window(50_000.0, max_cycles)
            results.append(system.run())
        assert results[0].to_dict() == results[1].to_dict()


class TestChaosSweep:
    def test_randomized_traces_identical(self):
        """Seed-randomized sweep: random mixes, schemes, seeds and
        windows must stay bit-identical pair by pair."""
        rng = random.Random(20090814)
        schemes = ("no-partitions", "equal-partitions", "bank-aware")
        for _ in range(6):
            mix = rng.choice(TABLE_III_SETS)
            scheme = rng.choice(schemes)
            ref, batched = run_pair(
                scheme, mix=mix,
                duration_cycles=float(rng.randrange(80_000, 200_000)),
                seed=rng.randrange(1, 10_000),
                warmup_fraction=rng.choice((0.0, 0.3, 0.5)),
                trace=True,
            )
            assert_identical(ref, batched)


class TestResultsIdempotency:
    def test_results_stable_across_calls(self):
        system = build_system(
            MIX, "bank-aware", CFG,
            RunSettings(duration_cycles=150_000.0, seed=3),
        )
        first = system.run().to_dict()
        again = system.results().to_dict()
        third = system.results().to_dict()
        assert first == again == third

    def test_results_leave_metrics_registry_alone(self):
        system = build_system(
            MIX, "bank-aware", CFG,
            RunSettings(duration_cycles=150_000.0, seed=3, trace=True),
        )
        system.run()
        registry = system.metrics
        before = system.metrics.snapshot()
        system.results()
        assert system.metrics is registry
        assert system.metrics.snapshot() == before


class TestNucaStatsCounters:
    def test_record_and_views(self):
        stats = NucaStats(num_cores=4)
        stats.record(0, hit=True)
        stats.record(0, hit=True)
        stats.record(2, hit=False)
        assert stats.hits == {0: 2}
        assert stats.misses == {2: 1}
        assert stats.core_hits(0) == 2
        assert stats.core_hits(1) == 0
        assert stats.core_misses(2) == 1
        assert stats.total_accesses() == 3

    def test_record_grows_past_construction_size(self):
        stats = NucaStats(num_cores=1)
        stats.record(5, hit=False)
        assert stats.core_misses(5) == 1
        assert stats.misses == {5: 1}

    def test_dict_seed_round_trip(self):
        stats = NucaStats({1: 3}, {0: 2, 1: 1}, migrations=7, writebacks=2)
        assert stats.hits == {1: 3}
        assert stats.misses == {0: 2, 1: 1}
        assert stats.snapshot() == stats
