"""Full-system discrete-event simulation: construction, determinism,
co-scheduling, measurement windows, end-to-end partitioning behaviour."""

import pytest

from repro.config import scaled_config
from repro.sim.runner import (
    RunSettings,
    build_system,
    compare_schemes,
    estimate_access_rate,
    run_mix,
)
from repro.sim.system import CMPSystem
from repro.workloads import Mix, generate_trace, get

CFG = scaled_config(32, epoch_cycles=150_000)  # tiny 64-set banks for speed
FAST = RunSettings(duration_cycles=500_000.0, seed=3)
MIX = Mix(("gzip", "eon", "mcf", "galgel", "perlbmk", "crafty", "gap", "swim"))


def small_system(scheme="equal-partitions", mix=MIX, settings=FAST):
    return build_system(mix, scheme, CFG, settings)


class TestConstruction:
    def test_scheme_validated(self):
        with pytest.raises(ValueError):
            CMPSystem(CFG, [get("gzip")] * 8, [None] * 8, scheme="magic")

    def test_core_count_must_match(self):
        t = generate_trace(get("gzip"), 10, CFG.l2.sets_per_bank)
        with pytest.raises(ValueError):
            CMPSystem(CFG, [get("gzip")] * 3, [t] * 3, scheme="no-partitions")

    def test_mix_size_checked(self):
        with pytest.raises(ValueError):
            build_system(Mix(("gzip",)), "no-partitions", CFG, FAST)

    def test_bank_aware_needs_profilers(self):
        traces = [
            generate_trace(get("gzip"), 10, CFG.l2.sets_per_bank)
            for _ in range(8)
        ]
        with pytest.raises(ValueError):
            CMPSystem(
                CFG, [get("gzip")] * 8, traces,
                scheme="bank-aware", profiler_kind="none",
            )

    def test_shared_scheme_uses_dnuca_by_default(self):
        sys_ = small_system("no-partitions")
        assert sys_.l2.placement == "dnuca"
        assert sys_.l2.mode == "shared"

    def test_partitioned_scheme_starts_equal(self):
        sys_ = small_system("equal-partitions")
        assert sys_.l2.mode == "partitioned"
        assert sys_.l2.partition_map.way_vector() == {c: 16 for c in range(8)}


class TestEventLoop:
    def test_deterministic(self):
        a = small_system().run()
        b = small_system().run()
        assert [c.l2_misses for c in a.cores] == [c.l2_misses for c in b.cores]
        assert [c.cycles for c in a.cores] == [c.cycles for c in b.cores]

    def test_all_cores_progress(self):
        r = small_system().run()
        assert all(c.l2_accesses > 0 for c in r.cores)
        assert all(c.instructions > 0 for c in r.cores)

    def test_cores_coscheduled_to_the_end(self):
        """No core may run ahead of the stop time by more than one access's
        worth of work — the co-scheduling guarantee."""
        sys_ = small_system()
        sys_.run()
        stop = sys_.stop_time
        assert stop is not None
        for timer in sys_.timers:
            assert timer.time >= 0.5 * stop

    def test_duration_respected(self):
        sys_ = small_system()
        sys_.run()
        assert sys_.stop_time <= FAST.duration_cycles

    def test_hits_plus_misses_equals_accesses(self):
        sys_ = small_system()
        r = sys_.run()
        for core in range(8):
            total = sys_.l2.stats.hits.get(core, 0) + sys_.l2.stats.misses.get(core, 0)
            assert total == sys_.l2.stats.core_accesses(core)

    def test_measurement_window_excludes_warmup(self):
        full = build_system(MIX, "no-partitions", CFG, RunSettings(
            duration_cycles=500_000.0, warmup_fraction=0.0, seed=3))
        warm = build_system(MIX, "no-partitions", CFG, RunSettings(
            duration_cycles=500_000.0, warmup_fraction=0.5, seed=3))
        rf, rw = full.run(), warm.run()
        assert rw.total_accesses < rf.total_accesses
        # cold misses concentrated in the warmup: measured rate is lower
        assert rw.miss_rate <= rf.miss_rate + 0.02

    def test_bad_window_rejected(self):
        sys_ = small_system()
        with pytest.raises(ValueError):
            sys_.set_measurement_window(-1.0)
        with pytest.raises(ValueError):
            sys_.set_measurement_window(100.0, 50.0)


class TestDynamicController:
    def test_epochs_fire(self):
        sys_ = small_system("bank-aware")
        r = sys_.run()
        assert len(r.epochs) >= 2
        for rec in r.epochs:
            assert sum(rec.ways) == CFG.l2.total_ways

    def test_partition_applied_on_l2(self):
        sys_ = small_system("bank-aware")
        sys_.run()
        assert sys_.l2.partition_map.way_vector() == {
            c: w for c, w in enumerate(sys_.controller.history[-1].ways)
        }

    def test_reuse_cores_protected(self):
        """Whatever the controller hands the streamers (spare capacity may
        legitimately flow to them), the small reuse workloads must end up
        satisfied: dedicated ways at least their Local bank's worth and low
        steady-state miss rates."""
        sys_ = small_system("bank-aware")
        r = sys_.run()
        ways = r.epochs[-1].ways
        for core in (0, 1, 3, 5):  # gzip, eon, galgel, crafty
            assert ways[core] >= 4
            assert r.cores[core].miss_rate < 0.35


class TestEndToEnd:
    def test_partitioning_beats_sharing_on_adversarial_mix(self):
        """The paper's headline, in miniature: confining streamers cuts the
        misses-per-instruction of the whole system."""
        mix = Mix(("crafty", "swim", "vpr", "mcf", "gzip", "swim", "vortex", "art"))
        st = RunSettings(duration_cycles=1_200_000.0, seed=5)
        comp = compare_schemes(mix, CFG, st, schemes=("no-partitions", "equal-partitions"))
        assert comp.relative_miss_rate("equal-partitions") < 0.9

    def test_victim_core_protected_by_partitioning(self):
        mix = Mix(("crafty", "swim", "swim", "mcf", "art", "swim", "mcf", "swim"))
        st = RunSettings(duration_cycles=1_000_000.0, seed=6)
        shared = run_mix(mix, "no-partitions", CFG, st)
        equal = run_mix(mix, "equal-partitions", CFG, st)
        assert equal.cores[0].miss_rate < shared.cores[0].miss_rate

    def test_results_have_epoch_history_only_for_dynamic(self):
        assert run_mix(MIX, "equal-partitions", CFG, FAST).epochs == []


class TestRunnerHelpers:
    def test_estimate_access_rate_ordering(self):
        """Memory-hungry workloads are estimated faster issuers of L2
        accesses than compute-bound ones."""
        assert estimate_access_rate(get("mcf"), CFG) > estimate_access_rate(
            get("eon"), CFG
        )

    def test_relative_metrics_identity(self):
        comp = compare_schemes(MIX, CFG, FAST, schemes=("no-partitions",))
        assert comp.relative_miss_rate("no-partitions") == pytest.approx(1.0)
        assert comp.relative_cpi("no-partitions") == pytest.approx(1.0)


class TestUnrestrictedScheme:
    def test_runs_and_repartitions(self):
        sys_ = small_system("unrestricted", settings=RunSettings(
            duration_cycles=600_000.0, seed=3))
        r = sys_.run()
        assert len(r.epochs) >= 1
        for rec in r.epochs:
            assert sum(rec.ways) == CFG.l2.total_ways
            assert rec.center_banks is None  # no bank structure to report

    def test_tracks_bank_aware_closely(self):
        """The paper's claim, checked in the detailed simulator: the
        restricted Bank-aware scheme achieves roughly the miss rate of the
        idealised Unrestricted one."""
        st = RunSettings(duration_cycles=1_000_000.0, seed=5)
        mix = Mix(("crafty", "swim", "vpr", "mcf",
                   "gzip", "swim", "vortex", "art"))
        ba = run_mix(mix, "bank-aware", CFG, st)
        ur = run_mix(mix, "unrestricted", CFG, st)
        ba_mpi = ba.total_misses / max(ba.total_instructions, 1)
        ur_mpi = ur.total_misses / max(ur.total_instructions, 1)
        assert ba_mpi <= ur_mpi * 1.25
