"""The run observatory: store, diff, watch, gate, and their CLI surface.

The load-bearing contracts: a stored run's manifest binds results to
their provenance; ``repro diff`` finds the *first* canonical divergence
and exits non-zero on any (making it the serial-vs-parallel determinism
gate); the tail reader survives both a writer mid-append and the final
atomic replace; the bench gate fails on throughput collapse and on
silently dropped benchmarks.
"""

import json

import pytest

from repro.cli import main as cli_main
from repro.config import scaled_config
from repro.obs import (
    ObsError,
    RunStore,
    TailReader,
    WatchView,
    append_history,
    config_fingerprint,
    diff_traces,
    gate_report,
    load_report,
    render_diff_text,
    watch_trace,
)
from repro.fabric import truncate_file
from repro.telemetry import Tracer, read_jsonl, write_jsonl

CFG = scaled_config(32, epoch_cycles=150_000)


def _decision_stream(n=3, *, way_bump_at=None, extra_events=0):
    """A small valid trace: run_meta + n epoch decisions (+ tail skips)."""
    t = Tracer()
    t.emit_run_meta("simulate", detail="obs test")
    for epoch in range(n):
        ways = [4, 4, 8, 8, 4, 4, 8, 8]
        if way_bump_at == epoch:
            ways = [5, 3] + ways[2:]
        t.emit(
            "epoch_decision", time=float(epoch), epoch=epoch,
            algorithm="bank-aware", ways=ways,
            projected_misses=[100.0 + epoch] * 8,
        )
    for i in range(extra_events):
        t.emit("epoch_skip", time=float(n + i), epoch=n + i, reason="warmup")
    return t.events


# ---------------------------------------------------------------------------
# run store
# ---------------------------------------------------------------------------


class TestRunStore:
    def test_archive_list_get_round_trip(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        events = _decision_stream()
        record = store.archive(
            source="simulate", config=CFG, workloads=["bzip2"] * 8,
            settings={"seed": 7}, headline={"miss_rate": 0.25},
            trace_events=events,
        )
        assert record.run_id.startswith("simulate-")
        manifest = record.manifest
        assert manifest["format"] == "repro-run-manifest"
        assert manifest["config_fingerprint"] == config_fingerprint(CFG)
        assert len(manifest["config_fingerprint"]) == 16
        assert manifest["headline"] == {"miss_rate": 0.25}
        assert manifest["trace_events"] == len(events)
        assert read_jsonl(record.trace_path) == events

        listed = store.list()
        assert [r.run_id for r in listed] == [record.run_id]
        fetched = store.get(record.run_id)
        assert fetched.manifest == manifest
        assert store.resolve_trace(record.run_id) == record.trace_path

    def test_untraced_archive_has_no_trace(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        record = store.archive(source="montecarlo", config=CFG)
        assert record.manifest["trace"] is None
        assert record.trace_path is None
        with pytest.raises(ObsError, match="without a trace"):
            store.resolve_trace(record.run_id)

    def test_colliding_run_ids_get_suffixes(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        first = store.archive(source="compare", config=CFG)
        second = store.archive(source="compare", config=CFG)
        assert first.run_id != second.run_id
        assert len(store.list()) == 2

    def test_get_unknown_run_raises(self, tmp_path):
        with pytest.raises(ObsError, match="no run"):
            RunStore(tmp_path / "runs").get("nope")

    def test_list_skips_damaged_manifests(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        good = store.archive(source="simulate", config=CFG)
        bad = tmp_path / "runs" / "broken"
        bad.mkdir()
        (bad / "manifest.json").write_text("{nope", encoding="utf-8")
        assert [r.run_id for r in store.list()] == [good.run_id]

    def test_resolve_trace_prefers_paths(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        write_jsonl(trace, _decision_stream())
        assert RunStore(tmp_path / "runs").resolve_trace(str(trace)) == trace


# ---------------------------------------------------------------------------
# first-divergence diff
# ---------------------------------------------------------------------------


class TestDiff:
    def test_identical_streams(self):
        a, b = _decision_stream(), _decision_stream()
        report = diff_traces(a, b)
        assert report.divergence is None
        assert report.identical
        assert report.exit_code == 0
        assert "no divergence" in render_diff_text(report)

    def test_wall_clock_jitter_is_not_divergence(self):
        t = Tracer()
        t.emit("sweep_item", index=0, label="a", wall_s=0.25)
        u = Tracer()
        u.emit("sweep_item", index=0, label="a", wall_s=99.0)
        assert diff_traces(t.events, u.events).identical

    def test_first_divergence_names_epoch_and_cores(self):
        a = _decision_stream(3)
        b = _decision_stream(3, way_bump_at=1)
        report = diff_traces(a, b, a_label="serial", b_label="parallel")
        d = report.divergence
        assert d is not None
        assert report.exit_code == 1
        assert d.epoch == 1
        assert d.index == 2  # run_meta, decision 0, then the bumped one
        ways = [f for f in d.fields if f.name == "ways"]
        assert ways and ways[0].positions == (0, 1)
        assert "Rules 1-3" in ways[0].note
        text = render_diff_text(report)
        assert "FIRST DIVERGENCE at event #2" in text
        assert "serial" in text and "parallel" in text

    def test_divergence_stops_at_the_first_difference(self):
        # two perturbed epochs: only the earlier one is reported
        a = _decision_stream(4)
        b = _decision_stream(4, way_bump_at=2)
        b = [dict(e) for e in b]
        b[-1]["epoch"] = 99  # later difference must not win
        report = diff_traces(a, b)
        assert report.divergence.epoch == 2

    def test_length_mismatch_after_common_prefix(self):
        a = _decision_stream(3)
        b = _decision_stream(3, extra_events=2)
        report = diff_traces(a, b)
        assert report.divergence.kind == "length"
        assert report.exit_code == 1

    def test_metric_tolerances(self):
        def mc_stream(misses):
            t = Tracer()
            t.emit_run_meta("monte-carlo")
            t.emit("mc_point", index=0, mix=["bzip2"] * 8,
                   equal_misses=100.0, unrestricted_misses=misses,
                   bank_aware_misses=misses, ways=[8] * 8)
            return t.events

        a, b = mc_stream(100.0), mc_stream(100.0000001)
        strict = diff_traces(a, b)
        assert strict.exit_code == 1
        loose = diff_traces(a, b, rel_tol=1e-6)
        assert loose.exit_code == 0
        assert loose.waived > 0


# ---------------------------------------------------------------------------
# tail reader / watch
# ---------------------------------------------------------------------------


def _line(event: dict) -> bytes:
    return json.dumps(event).encode() + b"\n"


class TestTailReader:
    EV = {"type": "epoch_skip", "seq": 0, "time": 1.0, "epoch": 0,
          "reason": "warmup"}

    def test_partial_trailing_line_waits_for_the_writer(self, tmp_path):
        path = tmp_path / "grow.jsonl"
        full = _line(self.EV)
        path.write_bytes(full + full[:10])  # second event half-written
        reader = TailReader(path)
        assert reader.poll().events == [self.EV]
        # nothing new, partial line still pending
        assert reader.poll().events == []
        with open(path, "ab") as fh:
            fh.write(full[10:])
        assert reader.poll().events == [self.EV]

    def test_offset_is_resumable(self, tmp_path):
        path = tmp_path / "grow.jsonl"
        path.write_bytes(_line(self.EV))
        reader = TailReader(path)
        assert len(reader.poll().events) == 1
        with open(path, "ab") as fh:
            fh.write(_line(dict(self.EV, seq=1)))
            fh.write(_line(dict(self.EV, seq=2)))
        chunk = reader.poll()
        assert [e["seq"] for e in chunk.events] == [1, 2]
        assert not chunk.reset

    def test_atomic_replace_resets_the_stream(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_bytes(_line(self.EV) * 3)
        reader = TailReader(path)
        assert len(reader.poll().events) == 3
        # the finalising write_jsonl swaps in a fresh inode
        final = [dict(self.EV, seq=i) for i in range(2)]
        write_jsonl(path, final)
        chunk = reader.poll()
        assert chunk.reset
        assert reader.resets == 1
        assert [e["seq"] for e in chunk.events] == [0, 1]

    def test_missing_file_is_empty_not_an_error(self, tmp_path):
        reader = TailReader(tmp_path / "nope.jsonl")
        assert reader.poll().events == []

    def test_damaged_complete_line_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_bytes(b'{"type": broken}\n')
        with pytest.raises(ObsError, match="damaged trace line"):
            TailReader(path).poll()

    def test_truncated_mid_event_resets_and_buffers_the_tear(self, tmp_path):
        # a crash (or `repro chaos` tearing storage) can leave the trace
        # cut mid-event: the reader must restart, replay the intact
        # prefix, and hold the torn tail until the writer completes it
        path = tmp_path / "torn.jsonl"
        full = _line(self.EV)
        path.write_bytes(full * 3)
        reader = TailReader(path)
        assert len(reader.poll().events) == 3
        truncate_file(path, keep_fraction=0.5)  # tears event 2 mid-byte
        chunk = reader.poll()
        assert chunk.reset
        assert reader.resets == 1
        assert chunk.events == [self.EV]  # only the intact prefix
        kept = path.stat().st_size
        with open(path, "ab") as fh:  # the writer finishes the line
            fh.write((full * 3)[kept:])
        assert reader.poll().events == [self.EV, self.EV]

    def test_heartbeats_interleaved_with_supervisor_retries(self, tmp_path):
        # the stream a chaos run's pool backend writes: progress
        # heartbeats with advisory supervisor events woven between them
        path = tmp_path / "chaos.jsonl"
        sup = {"type": "supervisor", "seq": 0, "kind": "retry", "index": 3,
               "attempt": 1, "label": "mix-3", "rung": "pool",
               "detail": "InjectedWorkerCrash: boom"}
        beat = {"type": "progress", "seq": 0, "done": 1, "total": 4,
                "source": "montecarlo", "wall_s": 0.5}
        stream = [
            dict(beat, seq=0),
            dict(sup, seq=1),
            dict(beat, seq=2, done=2, wall_s=1.0),
            dict(sup, seq=3, kind="timeout", detail="no result"),
            dict(sup, seq=4, kind="degrade", detail="deadline expired"),
            dict(beat, seq=5, done=4, wall_s=2.0),
        ]
        reader, view = TailReader(path), WatchView()
        path.write_bytes(b"".join(_line(e) for e in stream[:3]))
        view.update(reader.poll())
        assert view.counts == {"progress": 2, "supervisor": 1}
        assert view.last_progress["done"] == 2
        assert not view.complete
        with open(path, "ab") as fh:
            fh.write(b"".join(_line(e) for e in stream[3:]))
        view.update(reader.poll())
        assert view.counts == {"progress": 3, "supervisor": 3}
        assert view.total_events == 6
        assert view.complete  # the final heartbeat reached done == total


class TestWatch:
    def test_view_aggregates_progress_and_guards(self, tmp_path):
        path = tmp_path / "t.jsonl"
        t = Tracer()
        t.emit_run_meta("montecarlo")
        t.emit("guard_action", time=1.0, epoch=0, kind="fallback",
               detail="x", mode="equal-share")
        t.emit("progress", done=2, total=4, source="montecarlo", wall_s=1.0)
        t.write_jsonl(path)
        reader, view = TailReader(path), WatchView()
        view.update(reader.poll())
        assert view.total_events == 3
        assert view.guard_kinds == {"fallback": 1}
        assert not view.complete
        rendered = view.render()
        assert "2/4 (50.0%)" in rendered
        assert "ETA" in rendered
        assert "fallback=1" in rendered

    def test_watch_trace_completes_on_final_heartbeat(self, tmp_path):
        path = tmp_path / "t.jsonl"
        t = Tracer()
        t.emit("progress", done=4, total=4, source="sweep", wall_s=2.0)
        t.write_jsonl(path)
        out = []
        assert watch_trace(path, once=True, emit=out.append) == 0
        assert watch_trace(path, interval=0.01, emit=out.append) == 0
        assert any("complete" in line for line in out)

    def test_watch_trace_times_out_on_a_stalled_run(self, tmp_path):
        path = tmp_path / "t.jsonl"
        t = Tracer()
        t.emit("progress", done=1, total=4, source="sweep", wall_s=2.0)
        t.write_jsonl(path)
        assert watch_trace(path, interval=0.01, timeout=0.05,
                           emit=lambda _line: None) == 1


# ---------------------------------------------------------------------------
# bench gate
# ---------------------------------------------------------------------------


def _bench_payload(**throughputs):
    return {
        "format": "repro-bench",
        "version": 1,
        "suite": "quick",
        "git_rev": "abc1234",
        "jobs": None,
        "benchmarks": [
            {"name": name, "wall_s": 1.0, "throughput": tp, "unit": "x/s"}
            for name, tp in throughputs.items()
        ],
    }


class TestGate:
    def test_within_gate_passes(self):
        base = _bench_payload(msa=1000.0, mc=50.0)
        cur = _bench_payload(msa=950.0, mc=51.0)
        result = gate_report(cur, base, gate_pct=10.0)
        assert not result.failed
        assert [e.regressed for e in result.entries] == [False, False]

    def test_regression_fails(self):
        base = _bench_payload(msa=1000.0)
        cur = _bench_payload(msa=800.0)
        result = gate_report(cur, base, gate_pct=10.0)
        assert result.failed
        assert result.regressions == ["msa"]
        assert result.entries[0].delta_pct == pytest.approx(-20.0)

    def test_missing_benchmark_fails_added_is_informational(self):
        base = _bench_payload(msa=1000.0, dropped=10.0)
        cur = _bench_payload(msa=1000.0, brand_new=5.0)
        result = gate_report(cur, base, gate_pct=10.0)
        assert result.failed
        assert result.missing == ["dropped"]
        assert result.added == ["brand_new"]

    def test_history_appends(self, tmp_path):
        ledger = tmp_path / "hist.jsonl"
        payload = _bench_payload(msa=1000.0)
        append_history(ledger, payload)
        gate = gate_report(payload, payload, gate_pct=10.0)
        append_history(ledger, payload, gate)
        lines = [json.loads(line) for line in
                 ledger.read_text().splitlines()]
        assert len(lines) == 2
        assert lines[0]["gate"] is None
        assert lines[1]["gate"]["failed"] is False
        assert lines[1]["benchmarks"]["msa"]["throughput"] == 1000.0

    def test_load_report_rejects_non_bench_json(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text('{"format": "other"}', encoding="utf-8")
        with pytest.raises(ObsError, match="not a repro-bench report"):
            load_report(path)
        missing = tmp_path / "none.json"
        with pytest.raises(ObsError, match="cannot read"):
            load_report(missing)


# ---------------------------------------------------------------------------
# CLI integration: store + diff as the determinism gate
# ---------------------------------------------------------------------------


class TestCli:
    MC = ["montecarlo", "--mixes", "4", "--accesses", "3000",
          "--scale", "32", "--epoch", "150000"]

    @pytest.fixture(scope="class")
    def traced_runs(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("cli-runs")
        serial = root / "serial.jsonl"
        parallel = root / "parallel.jsonl"
        store = root / "store"
        assert cli_main(self.MC + ["--trace", str(serial),
                                   "--store", str(store)]) == 0
        assert cli_main(self.MC + ["--jobs", "2",
                                   "--trace", str(parallel)]) == 0
        return root

    def test_store_and_runs_queries(self, traced_runs, capsys):
        store = str(traced_runs / "store")
        assert cli_main(["runs", "list", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "montecarlo-" in out
        run_id = next(
            word for line in out.splitlines() for word in line.split()
            if word.startswith("montecarlo-")
        )
        assert cli_main(["runs", "show", run_id, "--store", store]) == 0
        manifest = json.loads(capsys.readouterr().out)
        assert manifest["headline"]["mixes"] == 4
        assert manifest["trace"] == "trace.jsonl"

    def test_serial_vs_parallel_diff_gate(self, traced_runs, capsys):
        code = cli_main(["diff", str(traced_runs / "serial.jsonl"),
                         str(traced_runs / "parallel.jsonl")])
        assert code == 0
        assert "no divergence" in capsys.readouterr().out

    def test_diff_resolves_stored_run_ids(self, traced_runs, capsys):
        store = str(traced_runs / "store")
        cli_main(["runs", "list", "--store", store])
        out = capsys.readouterr().out
        run_id = next(
            word for line in out.splitlines() for word in line.split()
            if word.startswith("montecarlo-")
        )
        assert cli_main(["diff", run_id, str(traced_runs / "parallel.jsonl"),
                         "--store", store]) == 0

    def test_diff_exits_nonzero_on_divergence(self, traced_runs, capsys):
        perturbed = traced_runs / "perturbed.jsonl"
        events = read_jsonl(traced_runs / "serial.jsonl")
        events = [dict(e) for e in events]
        victim = next(e for e in events if e["type"] == "mc_point")
        victim["ways"] = [w + 1 for w in victim["ways"]]
        write_jsonl(perturbed, events)
        code = cli_main(["diff", str(traced_runs / "serial.jsonl"),
                         str(perturbed)])
        assert code == 1
        assert "FIRST DIVERGENCE" in capsys.readouterr().out

    def test_watch_once(self, traced_runs, capsys):
        assert cli_main(["watch", str(traced_runs / "serial.jsonl"),
                         "--once"]) == 0
        out = capsys.readouterr().out
        assert "progress: 4/4" in out

    def test_untraced_store_archives_without_trace(self, tmp_path, capsys):
        store = tmp_path / "store"
        assert cli_main(self.MC + ["--store", str(store)]) == 0
        capsys.readouterr()
        assert cli_main(["runs", "list", "--store", str(store)]) == 0
        assert "-" in capsys.readouterr().out  # trace column shows none
