"""The run observatory: store, diff, watch, gate, and their CLI surface.

The load-bearing contracts: a stored run's manifest binds results to
their provenance; ``repro diff`` finds the *first* canonical divergence
and exits non-zero on any (making it the serial-vs-parallel determinism
gate); the tail reader survives both a writer mid-append and the final
atomic replace; the bench gate fails on throughput collapse and on
silently dropped benchmarks.
"""

import json

import pytest

from repro.cli import main as cli_main
from repro.config import scaled_config
from repro.obs import (
    ObsError,
    RunStore,
    TailReader,
    WatchView,
    append_history,
    config_fingerprint,
    diff_traces,
    gate_report,
    load_report,
    render_diff_text,
    watch_trace,
)
from repro.fabric import truncate_file
from repro.telemetry import Tracer, read_jsonl, write_jsonl

CFG = scaled_config(32, epoch_cycles=150_000)


def _decision_stream(n=3, *, way_bump_at=None, extra_events=0):
    """A small valid trace: run_meta + n epoch decisions (+ tail skips)."""
    t = Tracer()
    t.emit_run_meta("simulate", detail="obs test")
    for epoch in range(n):
        ways = [4, 4, 8, 8, 4, 4, 8, 8]
        if way_bump_at == epoch:
            ways = [5, 3] + ways[2:]
        t.emit(
            "epoch_decision", time=float(epoch), epoch=epoch,
            algorithm="bank-aware", ways=ways,
            projected_misses=[100.0 + epoch] * 8,
        )
    for i in range(extra_events):
        t.emit("epoch_skip", time=float(n + i), epoch=n + i, reason="warmup")
    return t.events


# ---------------------------------------------------------------------------
# run store
# ---------------------------------------------------------------------------


class TestRunStore:
    def test_archive_list_get_round_trip(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        events = _decision_stream()
        record = store.archive(
            source="simulate", config=CFG, workloads=["bzip2"] * 8,
            settings={"seed": 7}, headline={"miss_rate": 0.25},
            trace_events=events,
        )
        assert record.run_id.startswith("simulate-")
        manifest = record.manifest
        assert manifest["format"] == "repro-run-manifest"
        assert manifest["config_fingerprint"] == config_fingerprint(CFG)
        assert len(manifest["config_fingerprint"]) == 16
        assert manifest["headline"] == {"miss_rate": 0.25}
        assert manifest["trace_events"] == len(events)
        assert read_jsonl(record.trace_path) == events

        listed = store.list()
        assert [r.run_id for r in listed] == [record.run_id]
        fetched = store.get(record.run_id)
        assert fetched.manifest == manifest
        assert store.resolve_trace(record.run_id) == record.trace_path

    def test_untraced_archive_has_no_trace(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        record = store.archive(source="montecarlo", config=CFG)
        assert record.manifest["trace"] is None
        assert record.trace_path is None
        with pytest.raises(ObsError, match="without a trace"):
            store.resolve_trace(record.run_id)

    def test_colliding_run_ids_get_suffixes(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        first = store.archive(source="compare", config=CFG)
        second = store.archive(source="compare", config=CFG)
        assert first.run_id != second.run_id
        assert len(store.list()) == 2

    def test_get_unknown_run_raises(self, tmp_path):
        with pytest.raises(ObsError, match="no run"):
            RunStore(tmp_path / "runs").get("nope")

    def test_list_skips_damaged_manifests(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        good = store.archive(source="simulate", config=CFG)
        bad = tmp_path / "runs" / "broken"
        bad.mkdir()
        (bad / "manifest.json").write_text("{nope", encoding="utf-8")
        assert [r.run_id for r in store.list()] == [good.run_id]

    def test_resolve_trace_prefers_paths(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        write_jsonl(trace, _decision_stream())
        assert RunStore(tmp_path / "runs").resolve_trace(str(trace)) == trace


# ---------------------------------------------------------------------------
# first-divergence diff
# ---------------------------------------------------------------------------


class TestDiff:
    def test_identical_streams(self):
        a, b = _decision_stream(), _decision_stream()
        report = diff_traces(a, b)
        assert report.divergence is None
        assert report.identical
        assert report.exit_code == 0
        assert "no divergence" in render_diff_text(report)

    def test_wall_clock_jitter_is_not_divergence(self):
        t = Tracer()
        t.emit("sweep_item", index=0, label="a", wall_s=0.25)
        u = Tracer()
        u.emit("sweep_item", index=0, label="a", wall_s=99.0)
        assert diff_traces(t.events, u.events).identical

    def test_first_divergence_names_epoch_and_cores(self):
        a = _decision_stream(3)
        b = _decision_stream(3, way_bump_at=1)
        report = diff_traces(a, b, a_label="serial", b_label="parallel")
        d = report.divergence
        assert d is not None
        assert report.exit_code == 1
        assert d.epoch == 1
        assert d.index == 2  # run_meta, decision 0, then the bumped one
        ways = [f for f in d.fields if f.name == "ways"]
        assert ways and ways[0].positions == (0, 1)
        assert "Rules 1-3" in ways[0].note
        text = render_diff_text(report)
        assert "FIRST DIVERGENCE at event #2" in text
        assert "serial" in text and "parallel" in text

    def test_divergence_stops_at_the_first_difference(self):
        # two perturbed epochs: only the earlier one is reported
        a = _decision_stream(4)
        b = _decision_stream(4, way_bump_at=2)
        b = [dict(e) for e in b]
        b[-1]["epoch"] = 99  # later difference must not win
        report = diff_traces(a, b)
        assert report.divergence.epoch == 2

    def test_length_mismatch_after_common_prefix(self):
        a = _decision_stream(3)
        b = _decision_stream(3, extra_events=2)
        report = diff_traces(a, b)
        assert report.divergence.kind == "length"
        assert report.exit_code == 1

    def test_metric_tolerances(self):
        def mc_stream(misses):
            t = Tracer()
            t.emit_run_meta("monte-carlo")
            t.emit("mc_point", index=0, mix=["bzip2"] * 8,
                   equal_misses=100.0, unrestricted_misses=misses,
                   bank_aware_misses=misses, ways=[8] * 8)
            return t.events

        a, b = mc_stream(100.0), mc_stream(100.0000001)
        strict = diff_traces(a, b)
        assert strict.exit_code == 1
        loose = diff_traces(a, b, rel_tol=1e-6)
        assert loose.exit_code == 0
        assert loose.waived > 0


# ---------------------------------------------------------------------------
# tail reader / watch
# ---------------------------------------------------------------------------


def _line(event: dict) -> bytes:
    return json.dumps(event).encode() + b"\n"


class TestTailReader:
    EV = {"type": "epoch_skip", "seq": 0, "time": 1.0, "epoch": 0,
          "reason": "warmup"}

    def test_partial_trailing_line_waits_for_the_writer(self, tmp_path):
        path = tmp_path / "grow.jsonl"
        full = _line(self.EV)
        path.write_bytes(full + full[:10])  # second event half-written
        reader = TailReader(path)
        assert reader.poll().events == [self.EV]
        # nothing new, partial line still pending
        assert reader.poll().events == []
        with open(path, "ab") as fh:
            fh.write(full[10:])
        assert reader.poll().events == [self.EV]

    def test_offset_is_resumable(self, tmp_path):
        path = tmp_path / "grow.jsonl"
        path.write_bytes(_line(self.EV))
        reader = TailReader(path)
        assert len(reader.poll().events) == 1
        with open(path, "ab") as fh:
            fh.write(_line(dict(self.EV, seq=1)))
            fh.write(_line(dict(self.EV, seq=2)))
        chunk = reader.poll()
        assert [e["seq"] for e in chunk.events] == [1, 2]
        assert not chunk.reset

    def test_atomic_replace_resets_the_stream(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_bytes(_line(self.EV) * 3)
        reader = TailReader(path)
        assert len(reader.poll().events) == 3
        # the finalising write_jsonl swaps in a fresh inode
        final = [dict(self.EV, seq=i) for i in range(2)]
        write_jsonl(path, final)
        chunk = reader.poll()
        assert chunk.reset
        assert reader.resets == 1
        assert [e["seq"] for e in chunk.events] == [0, 1]

    def test_missing_file_is_empty_not_an_error(self, tmp_path):
        reader = TailReader(tmp_path / "nope.jsonl")
        assert reader.poll().events == []

    def test_damaged_complete_line_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_bytes(b'{"type": broken}\n')
        with pytest.raises(ObsError, match="damaged trace line"):
            TailReader(path).poll()

    def test_truncated_mid_event_resets_and_buffers_the_tear(self, tmp_path):
        # a crash (or `repro chaos` tearing storage) can leave the trace
        # cut mid-event: the reader must restart, replay the intact
        # prefix, and hold the torn tail until the writer completes it
        path = tmp_path / "torn.jsonl"
        full = _line(self.EV)
        path.write_bytes(full * 3)
        reader = TailReader(path)
        assert len(reader.poll().events) == 3
        truncate_file(path, keep_fraction=0.5)  # tears event 2 mid-byte
        chunk = reader.poll()
        assert chunk.reset
        assert reader.resets == 1
        assert chunk.events == [self.EV]  # only the intact prefix
        kept = path.stat().st_size
        with open(path, "ab") as fh:  # the writer finishes the line
            fh.write((full * 3)[kept:])
        assert reader.poll().events == [self.EV, self.EV]

    def test_heartbeats_interleaved_with_supervisor_retries(self, tmp_path):
        # the stream a chaos run's pool backend writes: progress
        # heartbeats with advisory supervisor events woven between them
        path = tmp_path / "chaos.jsonl"
        sup = {"type": "supervisor", "seq": 0, "kind": "retry", "index": 3,
               "attempt": 1, "label": "mix-3", "rung": "pool",
               "detail": "InjectedWorkerCrash: boom"}
        beat = {"type": "progress", "seq": 0, "done": 1, "total": 4,
                "source": "montecarlo", "wall_s": 0.5}
        stream = [
            dict(beat, seq=0),
            dict(sup, seq=1),
            dict(beat, seq=2, done=2, wall_s=1.0),
            dict(sup, seq=3, kind="timeout", detail="no result"),
            dict(sup, seq=4, kind="degrade", detail="deadline expired"),
            dict(beat, seq=5, done=4, wall_s=2.0),
        ]
        reader, view = TailReader(path), WatchView()
        path.write_bytes(b"".join(_line(e) for e in stream[:3]))
        view.update(reader.poll())
        assert view.counts == {"progress": 2, "supervisor": 1}
        assert view.last_progress["done"] == 2
        assert not view.complete
        with open(path, "ab") as fh:
            fh.write(b"".join(_line(e) for e in stream[3:]))
        view.update(reader.poll())
        assert view.counts == {"progress": 3, "supervisor": 3}
        assert view.total_events == 6
        assert view.complete  # the final heartbeat reached done == total


class TestWatch:
    def test_view_aggregates_progress_and_guards(self, tmp_path):
        path = tmp_path / "t.jsonl"
        t = Tracer()
        t.emit_run_meta("montecarlo")
        t.emit("guard_action", time=1.0, epoch=0, kind="fallback",
               detail="x", mode="equal-share")
        t.emit("progress", done=2, total=4, source="montecarlo", wall_s=1.0)
        t.write_jsonl(path)
        reader, view = TailReader(path), WatchView()
        view.update(reader.poll())
        assert view.total_events == 3
        assert view.guard_kinds == {"fallback": 1}
        assert not view.complete
        rendered = view.render()
        assert "2/4 (50.0%)" in rendered
        assert "ETA" in rendered
        assert "fallback=1" in rendered

    def test_watch_trace_completes_on_final_heartbeat(self, tmp_path):
        path = tmp_path / "t.jsonl"
        t = Tracer()
        t.emit("progress", done=4, total=4, source="sweep", wall_s=2.0)
        t.write_jsonl(path)
        out = []
        assert watch_trace(path, once=True, emit=out.append) == 0
        assert watch_trace(path, interval=0.01, emit=out.append) == 0
        assert any("complete" in line for line in out)

    def test_watch_trace_times_out_on_a_stalled_run(self, tmp_path):
        path = tmp_path / "t.jsonl"
        t = Tracer()
        t.emit("progress", done=1, total=4, source="sweep", wall_s=2.0)
        t.write_jsonl(path)
        assert watch_trace(path, interval=0.01, timeout=0.05,
                           emit=lambda _line: None) == 1


# ---------------------------------------------------------------------------
# bench gate
# ---------------------------------------------------------------------------


def _bench_payload(**throughputs):
    return {
        "format": "repro-bench",
        "version": 1,
        "suite": "quick",
        "git_rev": "abc1234",
        "jobs": None,
        "benchmarks": [
            {"name": name, "wall_s": 1.0, "throughput": tp, "unit": "x/s"}
            for name, tp in throughputs.items()
        ],
    }


class TestGate:
    def test_within_gate_passes(self):
        base = _bench_payload(msa=1000.0, mc=50.0)
        cur = _bench_payload(msa=950.0, mc=51.0)
        result = gate_report(cur, base, gate_pct=10.0)
        assert not result.failed
        assert [e.regressed for e in result.entries] == [False, False]

    def test_regression_fails(self):
        base = _bench_payload(msa=1000.0)
        cur = _bench_payload(msa=800.0)
        result = gate_report(cur, base, gate_pct=10.0)
        assert result.failed
        assert result.regressions == ["msa"]
        assert result.entries[0].delta_pct == pytest.approx(-20.0)

    def test_missing_benchmark_fails_added_is_informational(self):
        base = _bench_payload(msa=1000.0, dropped=10.0)
        cur = _bench_payload(msa=1000.0, brand_new=5.0)
        result = gate_report(cur, base, gate_pct=10.0)
        assert result.failed
        assert result.missing == ["dropped"]
        assert result.added == ["brand_new"]

    def test_history_appends(self, tmp_path):
        ledger = tmp_path / "hist.jsonl"
        payload = _bench_payload(msa=1000.0)
        append_history(ledger, payload)
        gate = gate_report(payload, payload, gate_pct=10.0)
        append_history(ledger, payload, gate)
        lines = [json.loads(line) for line in
                 ledger.read_text().splitlines()]
        assert len(lines) == 2
        assert lines[0]["gate"] is None
        assert lines[1]["gate"]["failed"] is False
        assert lines[1]["benchmarks"]["msa"]["throughput"] == 1000.0

    def test_load_report_rejects_non_bench_json(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text('{"format": "other"}', encoding="utf-8")
        with pytest.raises(ObsError, match="not a repro-bench report"):
            load_report(path)
        missing = tmp_path / "none.json"
        with pytest.raises(ObsError, match="cannot read"):
            load_report(missing)


# ---------------------------------------------------------------------------
# CLI integration: store + diff as the determinism gate
# ---------------------------------------------------------------------------


class TestCli:
    MC = ["montecarlo", "--mixes", "4", "--accesses", "3000",
          "--scale", "32", "--epoch", "150000"]

    @pytest.fixture(scope="class")
    def traced_runs(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("cli-runs")
        serial = root / "serial.jsonl"
        parallel = root / "parallel.jsonl"
        store = root / "store"
        assert cli_main(self.MC + ["--trace", str(serial),
                                   "--store", str(store)]) == 0
        assert cli_main(self.MC + ["--jobs", "2",
                                   "--trace", str(parallel)]) == 0
        return root

    def test_store_and_runs_queries(self, traced_runs, capsys):
        store = str(traced_runs / "store")
        assert cli_main(["runs", "list", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "montecarlo-" in out
        run_id = next(
            word for line in out.splitlines() for word in line.split()
            if word.startswith("montecarlo-")
        )
        assert cli_main(["runs", "show", run_id, "--store", store]) == 0
        manifest = json.loads(capsys.readouterr().out)
        assert manifest["headline"]["mixes"] == 4
        assert manifest["trace"] == "trace.jsonl"

    def test_serial_vs_parallel_diff_gate(self, traced_runs, capsys):
        code = cli_main(["diff", str(traced_runs / "serial.jsonl"),
                         str(traced_runs / "parallel.jsonl")])
        assert code == 0
        assert "no divergence" in capsys.readouterr().out

    def test_diff_resolves_stored_run_ids(self, traced_runs, capsys):
        store = str(traced_runs / "store")
        cli_main(["runs", "list", "--store", store])
        out = capsys.readouterr().out
        run_id = next(
            word for line in out.splitlines() for word in line.split()
            if word.startswith("montecarlo-")
        )
        assert cli_main(["diff", run_id, str(traced_runs / "parallel.jsonl"),
                         "--store", store]) == 0

    def test_diff_exits_nonzero_on_divergence(self, traced_runs, capsys):
        perturbed = traced_runs / "perturbed.jsonl"
        events = read_jsonl(traced_runs / "serial.jsonl")
        events = [dict(e) for e in events]
        victim = next(e for e in events if e["type"] == "mc_point")
        victim["ways"] = [w + 1 for w in victim["ways"]]
        write_jsonl(perturbed, events)
        code = cli_main(["diff", str(traced_runs / "serial.jsonl"),
                         str(perturbed)])
        assert code == 1
        assert "FIRST DIVERGENCE" in capsys.readouterr().out

    def test_watch_once(self, traced_runs, capsys):
        assert cli_main(["watch", str(traced_runs / "serial.jsonl"),
                         "--once"]) == 0
        out = capsys.readouterr().out
        assert "progress: 4/4" in out

    def test_untraced_store_archives_without_trace(self, tmp_path, capsys):
        store = tmp_path / "store"
        assert cli_main(self.MC + ["--store", str(store)]) == 0
        capsys.readouterr()
        assert cli_main(["runs", "list", "--store", str(store)]) == 0
        assert "-" in capsys.readouterr().out  # trace column shows none


# ---------------------------------------------------------------------------
# per-epoch time series
# ---------------------------------------------------------------------------


def _snapshot_stream():
    """A two-epoch trace with snapshots, decisions, guard/skip activity."""
    t = Tracer()
    t.emit_run_meta("simulate", detail="series test")
    t.emit(
        "epoch_decision", time=100.0, epoch=0, algorithm="bank-aware",
        policy="bank-aware", ways=[4, 12], projected_misses=[10.0, 20.0],
    )
    t.emit("guard_action", time=110.0, epoch=0, kind="fallback",
           detail="x", mode="equal-share")
    t.emit(
        "bank_snapshot", time=120.0, epoch=0, hits=[50, 70], misses=[10, 30],
        occupancy=[32, 32], queue_served=[60, 100], queue_delay=[30.0, 400.0],
        migrations=5, writebacks=2, core_hits=[80, 40], core_misses=[20, 20],
    )
    t.emit("epoch_skip", time=180.0, epoch=1, reason="warmup")
    t.emit(
        "bank_snapshot", time=200.0, epoch=1, hits=[90, 120],
        misses=[20, 40], occupancy=[32, 32], queue_served=[110, 160],
        queue_delay=[55.0, 700.0], migrations=9, writebacks=4,
        core_hits=[150, 90], core_misses=[30, 40],
    )
    return t.events


class TestSeries:
    def test_rows_carry_windowed_deltas(self):
        from repro.obs import build_series

        payload = build_series(_snapshot_stream())
        assert payload["format"] == "repro-timeseries"
        table = payload["schemes"][""]
        assert table["rows"] == 2
        cols = table["columns"]
        # first row is absolute, second the delta since the first snapshot
        assert cols["bank_accesses.b0"] == [60, 50]
        assert cols["bank_accesses.b1"] == [100, 60]
        # mean queue delay = delay delta / served delta
        assert cols["bank_queue_delay.b0"] == [0.5, 0.5]
        assert cols["bank_queue_delay.b1"] == [4.0, 5.0]
        assert cols["migrations"] == [5, 4]
        assert cols["writebacks"] == [2, 2]
        # per-core miss rate from the windowed core counters
        assert cols["core_miss_rate.c0"] == [0.2, 0.125]
        assert cols["core_miss_rate.c1"] == [pytest.approx(1 / 3),
                                             pytest.approx(2 / 7)]
        # the latest installed decision labels both rows
        assert cols["ways.c0"] == [4, 4]
        assert cols["ways.c1"] == [12, 12]
        assert cols["policy"] == ["bank-aware", "bank-aware"]
        # per-row action windows reset after each snapshot
        assert cols["guard_actions"] == [1, 0]
        assert cols["epoch_skips"] == [0, 1]

    def test_series_ignores_streams_without_snapshots(self):
        from repro.obs import build_series

        assert build_series(_decision_stream())["schemes"] == {}

    def test_bytes_are_insertion_order_independent(self):
        from repro.obs import build_series, series_to_bytes

        payload = build_series(_snapshot_stream())
        shuffled = {k: payload[k] for k in reversed(list(payload))}
        assert series_to_bytes(payload) == series_to_bytes(shuffled)
        # and stable across calls (pinned gzip header, canonical JSON)
        assert series_to_bytes(payload) == series_to_bytes(payload)

    def test_write_load_round_trip_and_damage(self, tmp_path):
        from repro.obs import build_series, load_series, write_series

        payload = build_series(_snapshot_stream())
        path = tmp_path / "timeseries.json.gz"
        write_series(path, payload)
        assert load_series(path) == payload
        path.write_bytes(path.read_bytes()[:20])  # torn file
        with pytest.raises(ObsError, match="time series"):
            load_series(path)

    def test_validate_series_catches_misalignment(self):
        from repro.obs import build_series, validate_series

        payload = json.loads(json.dumps(build_series(_snapshot_stream())))
        assert validate_series(payload) == []
        payload["schemes"][""]["columns"]["migrations"].append(0)
        assert any("migrations" in p for p in validate_series(payload))
        assert validate_series({"format": "nope"})
        assert validate_series([1, 2]) == [
            "series payload is not a JSON object"
        ]

    def test_sidecar_identical_across_backends(self):
        from repro.obs import build_series, series_to_bytes
        from repro.sim.runner import RunSettings, run_mix
        from repro.workloads.mixes import TABLE_III_SETS

        def run(backend):
            result = run_mix(
                TABLE_III_SETS[0], "bank-aware", CFG,
                RunSettings(duration_cycles=450_000.0, seed=3, trace=True,
                            sim_backend=backend),
            )
            return series_to_bytes(build_series(result.events))

        assert run("reference") == run("batched")

    def test_sidecar_identical_across_jobs(self):
        from repro.obs import build_series, series_to_bytes
        from repro.sim.runner import RunSettings, compare_schemes
        from repro.workloads.mixes import TABLE_III_SETS

        def run(jobs):
            tracer = Tracer()
            tracer.emit_run_meta("compare", detail="series jobs gate")
            compare_schemes(
                TABLE_III_SETS[0], CFG,
                RunSettings(duration_cycles=450_000.0, seed=3, trace=True),
                schemes=("equal-partitions", "bank-aware"), jobs=jobs,
                tracer=tracer,
            )
            return series_to_bytes(build_series(tracer.events))

        assert run(1) == run(2)

    def test_store_archives_the_sidecar(self, tmp_path):
        from repro.obs import load_series

        store = RunStore(tmp_path / "runs")
        record = store.archive(
            source="simulate", config=CFG, trace_events=_snapshot_stream(),
        )
        assert record.manifest["timeseries"] == "timeseries.json.gz"
        assert record.manifest["timeseries_epochs"] == 2
        assert record.series_path.is_file()
        assert load_series(record.series_path)["schemes"][""]["rows"] == 2
        # a snapshot-free stream archives without a sidecar
        bare = store.archive(
            source="montecarlo", config=CFG, trace_events=_decision_stream(),
        )
        assert bare.manifest["timeseries"] is None
        assert bare.series_path is None


# ---------------------------------------------------------------------------
# cross-run analytics
# ---------------------------------------------------------------------------


class TestAnalytics:
    def test_exact_quantile_is_nearest_rank(self):
        from repro.obs import exact_quantile

        values = [5.0, 1.0, 3.0, 2.0, 4.0]
        assert exact_quantile(values, 0.5) == 3.0
        assert exact_quantile(values, 0.95) == 5.0
        assert exact_quantile(values, 1.0) == 5.0
        assert exact_quantile([7.0], 0.5) == 7.0
        with pytest.raises(ObsError, match="quantile"):
            exact_quantile(values, 0.0)
        with pytest.raises(ObsError, match="empty"):
            exact_quantile([], 0.5)

    def test_series_stats_select_and_goldens(self):
        from repro.obs import (
            build_series,
            render_stats_csv,
            render_stats_json,
            series_stats,
        )

        payload = build_series(_snapshot_stream())
        rows = series_stats(payload, select="migrations")
        assert [r["column"] for r in rows] == ["migrations"]
        row = rows[0]
        assert (row["count"], row["min"], row["max"]) == (2, 4.0, 5.0)
        assert row["mean"] == 4.5
        assert row["p50"] == 4.0  # nearest rank of [4, 5]
        assert row["last"] == 4.0
        # glob selection
        globbed = series_stats(payload, select="ways.*")
        assert [r["column"] for r in globbed] == ["ways.c0", "ways.c1"]
        # non-numeric columns (policy) never produce rows
        assert not series_stats(payload, select="policy")
        # deterministic renderers: byte-stable across calls
        assert render_stats_csv(rows) == render_stats_csv(rows)
        assert render_stats_csv(rows).splitlines()[0] == (
            "scheme,column,count,min,max,mean,p50,p95,last"
        )
        assert json.loads(render_stats_json(rows)) == rows

    def test_resolve_series_paths_and_store(self, tmp_path):
        from repro.obs import build_series, resolve_series, write_series

        store = RunStore(tmp_path / "runs")
        payload = build_series(_snapshot_stream())
        gz = tmp_path / "s.json.gz"
        write_series(gz, payload)
        assert resolve_series(str(gz), store) == payload
        trace = tmp_path / "t.jsonl"
        write_jsonl(trace, _snapshot_stream())
        assert resolve_series(str(trace), store) == payload
        record = store.archive(
            source="simulate", config=CFG, trace_events=_snapshot_stream(),
        )
        assert resolve_series(record.run_id, store) == payload
        bare = store.archive(source="montecarlo", config=CFG)
        with pytest.raises(ObsError, match="neither"):
            resolve_series(bare.run_id, store)

    @staticmethod
    def _record(run_id, **manifest):
        from pathlib import Path

        from repro.obs import RunRecord

        base = {
            "created": "2026-08-01T00:00:00Z", "source": "simulate",
            "config_fingerprint": "aabbccdd00112233",
            "workloads": ["bzip2"], "headline": {},
        }
        return RunRecord(run_id, Path("/nonexistent") / run_id,
                         {**base, **manifest})

    def test_query_runs_filters(self):
        from repro.obs import query_runs

        records = [
            self._record("r1", source="simulate",
                         created="2026-07-01T00:00:00Z",
                         headline={"miss_rate": 0.25}),
            self._record("r2", source="compare",
                         created="2026-08-01T12:00:00Z",
                         workloads=["mcf", "art"],
                         headline={"schemes": {
                             "bank-aware": {"relative_miss_rate": 0.8},
                             "no-partitions": {"relative_miss_rate": 1.0},
                         }}),
            self._record("r3", source="montecarlo",
                         created="2026-08-05T00:00:00Z",
                         config_fingerprint="ffee000011223344",
                         headline={"mean_bank_aware_ratio": 0.9,
                                   "mixes": 40}),
        ]

        def ids(**kw):
            return [r.run_id for r in query_runs(records, **{
                "source": None, "scheme": None, "workload": None,
                "fingerprint": None, "since": None, "until": None, **kw,
            })]

        assert ids() == ["r1", "r2", "r3"]
        assert ids(source="compare") == ["r2"]
        assert ids(scheme="bank-aware") == ["r2"]
        assert ids(workload="mcf") == ["r2"]
        assert ids(workload="bzip") == ["r1", "r3"]
        assert ids(fingerprint="aabb") == ["r1", "r2"]
        assert ids(since="2026-08") == ["r2", "r3"]
        assert ids(until="2026-07") == ["r1"]
        assert ids(since="2026-08", until="2026-08-04") == ["r2"]

    def test_runs_query_rows_and_renderer(self):
        from repro.obs import render_runs_query_text, runs_query_rows

        rows = runs_query_rows([
            self._record("r2", headline={"schemes": {
                "bank-aware": {"relative_miss_rate": 0.8},
            }}),
            self._record("r3", headline={"mean_bank_aware_ratio": 0.9,
                                         "mixes": 40}),
            self._record("r4", headline={}),
        ])
        assert rows[0]["fingerprint"] == "aabbccdd"
        assert rows[0]["headline"] == "bank-aware=0.800"
        assert rows[1]["headline"] == "bank_aware=0.900 over 40 mixes"
        assert rows[2]["headline"] == "-"
        text = render_runs_query_text(rows)
        assert "Stored runs (3 matched)" in text
        assert render_runs_query_text([]) == "no stored runs matched"

    @staticmethod
    def _bench_report(throughput, span_self):
        return {
            "format": "repro-bench", "version": 1,
            "benchmarks": [
                {"name": "detailed_epoch", "throughput": throughput * 2,
                 "meta": {}},
                {"name": "detailed_epoch_spans", "throughput": throughput,
                 "meta": {"span_self_s": span_self}},
            ],
        }

    def test_attribute_delta_finds_the_mover(self):
        from repro.obs import attribute_delta, render_attribution_text

        old = self._bench_report(100.0, {
            "run": 5.0, "run/install": 3.0, "run/policy.decide": 2.0,
        })
        new = self._bench_report(80.0, {
            "run": 5.0, "run/install": 3.0, "run/policy.decide": 8.0,
        })
        result = attribute_delta(old, new)
        assert result["delta_pct"] == pytest.approx(-20.0)
        assert result["mover"] == "run/policy.decide"
        shifts = {p["path"]: p["share_shift"] for p in result["phases"]}
        assert shifts["run/policy.decide"] == pytest.approx(0.3)
        assert shifts["run"] == pytest.approx(-0.1875)
        assert shifts["run/install"] == pytest.approx(-0.1125)
        text = render_attribution_text(result)
        assert "run/policy.decide" in text
        assert "-20.0%" in text

    def test_attribute_delta_requires_a_span_profile(self):
        from repro.obs import attribute_delta

        bare = {"format": "repro-bench", "version": 1, "benchmarks": []}
        with pytest.raises(ObsError, match="no span profile"):
            attribute_delta(bare, bare)


class TestWatchMetrics:
    def test_view_tracks_latest_series_row(self, tmp_path):
        path = tmp_path / "t.jsonl"
        write_jsonl(path, _snapshot_stream())
        view = WatchView(metrics=True)
        view.update(TailReader(path).poll())
        lines = view.render_metrics()
        assert len(lines) == 1
        assert "epoch 1" in lines[0]
        assert "miss=0.125/0.286" in lines[0]
        assert "peak bank delay=5.00cyc" in lines[0]
        assert "ways=4/12" in lines[0]
        assert "migr=4" in lines[0]
        assert lines[0] in view.render()

    def test_metrics_off_by_default(self, tmp_path):
        path = tmp_path / "t.jsonl"
        write_jsonl(path, _snapshot_stream())
        view = WatchView()
        view.update(TailReader(path).poll())
        assert view.series_state == {}
        assert "metrics" not in view.render()

    def test_reset_clears_series_state(self, tmp_path):
        path = tmp_path / "t.jsonl"
        write_jsonl(path, _snapshot_stream())
        reader, view = TailReader(path), WatchView(metrics=True)
        view.update(reader.poll())
        assert view.series_state
        write_jsonl(path, _decision_stream())  # atomic replace, no snapshots
        chunk = reader.poll()
        assert chunk.reset
        view.update(chunk)
        assert all(st["latest"] is None for st in view.series_state.values())


class TestCliObsV2:
    SIM = ["simulate", "--set", "1", "--duration", "450000",
           "--scale", "32", "--epoch", "150000", "--seed", "3"]

    @pytest.fixture(scope="class")
    def spanned_runs(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("obs-v2")
        store = root / "store"
        assert cli_main(self.SIM + ["--trace", str(root / "spanned.jsonl"),
                                    "--spans", "--store", str(store)]) == 0
        assert cli_main(self.SIM + ["--trace", str(root / "plain.jsonl")]) == 0
        return root

    def test_spans_require_tracing(self):
        with pytest.raises(SystemExit, match="--trace"):
            cli_main(self.SIM + ["--spans"])

    def test_spanned_trace_is_canonically_identical(self, spanned_runs,
                                                    capsys):
        assert cli_main(["diff", str(spanned_runs / "spanned.jsonl"),
                         str(spanned_runs / "plain.jsonl")]) == 0
        assert "no divergence" in capsys.readouterr().out

    def test_report_spans_reconciles(self, spanned_runs, capsys):
        assert cli_main(["report", str(spanned_runs / "spanned.jsonl"),
                         "--spans"]) == 0
        out = capsys.readouterr().out
        assert "reconciles with root-span wall total" in out
        assert "run/policy.decide" in out
        assert "run/install" in out

    def test_stats_trace_and_run_id_agree(self, spanned_runs, capsys):
        store = str(spanned_runs / "store")
        assert cli_main(["runs", "list", "--store", store, "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert len(rows) == 1 and rows[0]["run_id"].startswith("simulate-")
        run_id = rows[0]["run_id"]

        assert cli_main(["stats", str(spanned_runs / "spanned.jsonl"),
                         "--format", "csv"]) == 0
        from_trace = capsys.readouterr().out
        assert cli_main(["stats", run_id, "--store", store,
                         "--format", "csv"]) == 0
        assert capsys.readouterr().out == from_trace
        assert from_trace.splitlines()[0] == (
            "scheme,column,count,min,max,mean,p50,p95,last"
        )
        assert any(line.startswith(",core_miss_rate.c0,")
                   for line in from_trace.splitlines())

    def test_stats_select_and_json(self, spanned_runs, capsys):
        assert cli_main(["stats", str(spanned_runs / "spanned.jsonl"),
                         "--select", "ways.*", "--format", "json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows and all(r["column"].startswith("ways.") for r in rows)
        assert cli_main(["stats", str(spanned_runs / "spanned.jsonl"),
                         "--select", "migrations"]) == 0
        out = capsys.readouterr().out
        assert "Per-epoch series stats" in out and "migrations" in out

    def test_runs_query_filters_from_cli(self, spanned_runs, capsys):
        store = str(spanned_runs / "store")
        assert cli_main(["runs", "query", "--store", store,
                         "--source", "simulate", "--workload", "galgel"]) == 0
        out = capsys.readouterr().out
        assert "Stored runs (1 matched)" in out
        assert cli_main(["runs", "query", "--store", store,
                         "--source", "chaos"]) == 0
        assert "no stored runs matched" in capsys.readouterr().out
        assert cli_main(["runs", "query", "--store", store, "--json"]) == 0
        assert len(json.loads(capsys.readouterr().out)) == 1

    def test_watch_metrics_from_cli(self, spanned_runs, capsys):
        assert cli_main(["watch", str(spanned_runs / "spanned.jsonl"),
                         "--once", "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "metrics" in out and "ways=" in out

    def test_bench_attribute_from_cli(self, tmp_path, capsys):
        def report(path, throughput, decide):
            path.write_text(json.dumps({
                "format": "repro-bench", "version": 1, "benchmarks": [
                    {"name": "detailed_epoch_spans",
                     "throughput": throughput,
                     "meta": {"span_self_s": {"run": 4.0,
                                              "run/install": 2.0,
                                              "run/policy.decide": decide}}},
                ],
            }))
            return str(path)

        old = report(tmp_path / "old.json", 100.0, 1.0)
        new = report(tmp_path / "new.json", 90.0, 5.0)
        assert cli_main(["bench", "--attribute", old, new]) == 0
        out = capsys.readouterr().out
        assert "largest phase shift: run/policy.decide" in out
        assert "-10.0%" in out

    def test_bench_attribute_requires_span_profile(self, tmp_path, capsys):
        bare = tmp_path / "bare.json"
        bare.write_text(json.dumps({"format": "repro-bench", "version": 1,
                                    "benchmarks": []}))
        assert cli_main(["bench", "--attribute", str(bare), str(bare)]) == 2
        assert "no span profile" in capsys.readouterr().err
