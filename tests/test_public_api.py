"""The documented public API: imports, __all__ hygiene, README snippets."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.analysis",
    "repro.cache",
    "repro.coherence",
    "repro.config",
    "repro.cpu",
    "repro.fabric",
    "repro.lint",
    "repro.mem",
    "repro.noc",
    "repro.obs",
    "repro.parallel",
    "repro.partitioning",
    "repro.profiling",
    "repro.resilience",
    "repro.sim",
    "repro.telemetry",
    "repro.util",
    "repro.workloads",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_package_imports(name):
    importlib.import_module(name)


@pytest.mark.parametrize("name", PACKAGES)
def test_all_entries_resolve(name):
    mod = importlib.import_module(name)
    for symbol in getattr(mod, "__all__", []):
        assert hasattr(mod, symbol), f"{name}.__all__ lists missing {symbol}"


def test_version():
    import repro

    assert repro.__version__ == "1.0.0"


def test_readme_snippet_runs():
    """The README quickstart snippet must stay executable."""
    from repro import Mix, generate_trace, get, scaled_config
    from repro.partitioning import bank_aware_partition
    from repro.profiling import MissCurve, MSAProfiler

    cfg = scaled_config(32)
    trace = generate_trace(get("bzip2"), 5_000, cfg.l2.sets_per_bank, seed=1)
    prof = MSAProfiler(cfg.l2.sets_per_bank, cfg.l2.total_ways)
    prof.observe_many(trace.lines)
    curve = MissCurve.from_profiler(prof, "bzip2")
    assert 0.0 <= curve.miss_ratio_at(45) <= curve.miss_ratio_at(16) <= 1.0
    mix = Mix(("crafty", "gap", "mcf", "art", "equake", "equake", "bzip2", "equake"))
    assert len(mix.specs()) == 8
    decision = bank_aware_partition(
        [curve] * 8,
        num_banks=cfg.l2.num_banks,
        bank_ways=cfg.l2.bank_ways,
        max_ways_per_core=cfg.max_ways_per_core,
    )
    assert decision.total_ways == cfg.l2.total_ways
