"""The durable-write helper and every call site that relies on it.

The contract under test is the four-step dance (temp in the same dir,
fsync file, ``os.replace``, fsync dir): a crash at *any* point leaves
either the complete old file or the complete new one — and the rename
itself is flushed, which is the step ad-hoc writers forget.
"""

import json
import os
import stat

import pytest

from repro.analysis.montecarlo import MonteCarloPoint, MonteCarloResult
from repro.resilience.checkpoint import load_checkpoint, save_checkpoint
from repro.util.atomic_write import (
    atomic_write,
    atomic_write_bytes,
    atomic_write_text,
    fsync_directory,
)
from repro.workloads.mixes import Mix


class TestAtomicWrite:
    def test_round_trip_text_and_bytes(self, tmp_path):
        atomic_write_text(tmp_path / "a.txt", "hello")
        atomic_write_bytes(tmp_path / "b.bin", b"\x00\x01")
        assert (tmp_path / "a.txt").read_text(encoding="utf-8") == "hello"
        assert (tmp_path / "b.bin").read_bytes() == b"\x00\x01"

    def test_overwrites_existing_target(self, tmp_path):
        target = tmp_path / "a.txt"
        atomic_write_text(target, "old")
        atomic_write_text(target, "new")
        assert target.read_text(encoding="utf-8") == "new"

    def test_fsyncs_file_and_directory(self, tmp_path, monkeypatch):
        """Both the contents *and* the rename must reach stable storage."""
        synced = []
        real_fsync = os.fsync

        def recording_fsync(fd):
            synced.append(stat.S_ISDIR(os.fstat(fd).st_mode))
            real_fsync(fd)

        monkeypatch.setattr(os, "fsync", recording_fsync)
        atomic_write_text(tmp_path / "out.json", "{}")
        assert False in synced, "file contents were never fsynced"
        assert True in synced, "directory entry was never fsynced"

    def test_failed_writer_keeps_target_and_leaves_no_litter(self, tmp_path):
        target = tmp_path / "data.txt"
        atomic_write_text(target, "old")

        def dies_mid_write(tmp):
            with open(tmp, "w", encoding="utf-8") as fh:
                fh.write("partial")
            raise RuntimeError("killed mid-save")

        with pytest.raises(RuntimeError, match="killed mid-save"):
            atomic_write(target, dies_mid_write)
        assert target.read_text(encoding="utf-8") == "old"
        assert [p.name for p in tmp_path.iterdir()] == ["data.txt"]

    def test_failed_replace_keeps_target_and_cleans_temp(
        self, tmp_path, monkeypatch
    ):
        target = tmp_path / "data.txt"
        atomic_write_text(target, "old")

        def refuse_replace(src, dst):
            raise OSError("simulated crash at the rename")

        monkeypatch.setattr(os, "replace", refuse_replace)
        with pytest.raises(OSError, match="simulated crash"):
            atomic_write_text(target, "new")
        monkeypatch.undo()
        assert target.read_text(encoding="utf-8") == "old"
        assert [p.name for p in tmp_path.iterdir()] == ["data.txt"]

    def test_suffix_lands_on_the_temp_name(self, tmp_path):
        seen = {}

        def writer(tmp):
            seen["tmp"] = tmp
            with open(tmp, "w", encoding="utf-8") as fh:
                fh.write("x")

        atomic_write(tmp_path / "curve", writer, suffix=".npz")
        assert seen["tmp"].endswith(".tmp.npz")
        assert (tmp_path / "curve").read_text(encoding="utf-8") == "x"

    def test_fsync_directory_swallows_fsync_errors(self, tmp_path, monkeypatch):
        def broken_fsync(fd):
            raise OSError("fs rejects directory fsync")

        monkeypatch.setattr(os, "fsync", broken_fsync)
        fsync_directory(tmp_path)  # must not raise


class TestCheckpointDurability:
    META = {"seed": 1}

    def test_kill_during_save_keeps_previous_snapshot(
        self, tmp_path, monkeypatch
    ):
        """A crash mid-save must leave the old checkpoint loadable."""
        path = str(tmp_path / "sweep.json")
        save_checkpoint(path, "test-sweep", self.META, [{"i": 0}])

        def killed(src, dst):
            raise OSError("kill -9 during the rename")

        monkeypatch.setattr(os, "replace", killed)
        with pytest.raises(OSError):
            save_checkpoint(
                path, "test-sweep", self.META, [{"i": 0}, {"i": 1}]
            )
        monkeypatch.undo()
        meta, completed = load_checkpoint(path, "test-sweep")
        assert (meta, completed) == (self.META, [{"i": 0}])
        assert [p.name for p in tmp_path.iterdir()] == ["sweep.json"]

    def test_save_checkpoint_fsyncs_the_directory(self, tmp_path, monkeypatch):
        synced = []
        real_fsync = os.fsync

        def recording_fsync(fd):
            synced.append(stat.S_ISDIR(os.fstat(fd).st_mode))
            real_fsync(fd)

        monkeypatch.setattr(os, "fsync", recording_fsync)
        save_checkpoint(
            str(tmp_path / "sweep.json"), "test-sweep", self.META, []
        )
        assert True in synced

    def test_montecarlo_to_json_is_atomic_under_replace_failure(
        self, tmp_path, monkeypatch
    ):
        target = tmp_path / "points.json"
        first = MonteCarloResult(
            points=[MonteCarloPoint(Mix(("bzip2",)), 10.0, 5.0, 6.0, (8,))]
        )
        first.to_json(target)
        second = MonteCarloResult(
            points=[MonteCarloPoint(Mix(("swim",)), 20.0, 5.0, 6.0, (8,))]
        )

        def killed(src, dst):
            raise OSError("kill -9 during the rename")

        monkeypatch.setattr(os, "replace", killed)
        with pytest.raises(OSError):
            second.to_json(target)
        monkeypatch.undo()
        reread = MonteCarloResult.from_json(target)
        assert [p.mix.names for p in reread.points] == [("bzip2",)]
        assert [p.name for p in tmp_path.iterdir()] == ["points.json"]
        payload = json.loads(target.read_text(encoding="utf-8"))
        assert payload["format"] == "repro-monte-carlo-result"
