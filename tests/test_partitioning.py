"""Partition assignment algorithms: Unrestricted (UCP) and Bank-aware."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.partitioning.bank_aware import BankAwareDecision, bank_aware_partition
from repro.partitioning.static import equal_partition
from repro.partitioning.unrestricted import predicted_misses, unrestricted_partition
from repro.profiling.miss_curve import MissCurve


def knee_curve(knee: int, total=1000.0, floor_frac=0.05, max_ways=128) -> MissCurve:
    """Misses fall linearly to a floor at ``knee`` ways, flat after."""
    ways = np.arange(max_ways + 1, dtype=np.float64)
    frac = np.clip(ways / knee, 0, 1)
    misses = total * (1 - frac * (1 - floor_frac))
    return MissCurve(f"knee{knee}", misses, total)


def flat_curve(level=500.0, max_ways=128) -> MissCurve:
    return MissCurve("flat", np.full(max_ways + 1, level), level)


@st.composite
def curve_sets(draw, n=8):
    curves = []
    for i in range(n):
        knee = draw(st.integers(1, 80))
        total = draw(st.floats(10.0, 10_000.0))
        floor = draw(st.floats(0.0, 0.9))
        curves.append(knee_curve(knee, total, floor))
    return curves


class TestEqual:
    def test_even_share(self):
        assert equal_partition(8, 128) == [16] * 8

    def test_uneven_remainder_goes_to_lowest_cores(self):
        assert equal_partition(3, 128) == [43, 43, 42]
        assert equal_partition(5, 17) == [4, 4, 3, 3, 3]

    def test_rejects_fewer_ways_than_cores(self):
        with pytest.raises(ValueError):
            equal_partition(3, 2)

    def test_rejects_no_cores(self):
        with pytest.raises(ValueError):
            equal_partition(0, 128)


class TestUnrestricted:
    def test_sums_to_capacity(self):
        curves = [knee_curve(k) for k in (4, 8, 16, 32, 45, 6, 10, 60)]
        alloc = unrestricted_partition(curves, 128)
        assert sum(alloc) == 128
        assert all(a >= 1 for a in alloc)

    def test_greedy_feeds_the_hungry(self):
        """A core with a big steep curve gets more than one with a small
        flat one."""
        hungry = knee_curve(60, total=10_000)
        modest = knee_curve(4, total=100)
        alloc = unrestricted_partition([hungry] + [modest] * 7, 128)
        assert alloc[0] > 40

    def test_lookahead_crosses_plateaus(self):
        """A cliff curve (no gain until +20 ways) must still win capacity
        over tiny-gain curves — the lookahead property."""
        misses = np.full(129, 1000.0)
        misses[20:] = 10.0
        cliff = MissCurve("cliff", misses, 1000.0)
        dribble = knee_curve(128, total=50)
        alloc = unrestricted_partition([cliff] + [dribble] * 7, 128)
        assert alloc[0] >= 20

    def test_respects_cap(self):
        hungry = knee_curve(120, total=100_000)
        others = [flat_curve(1.0)] * 7
        alloc = unrestricted_partition([hungry] + others, 128, max_ways_per_core=72)
        assert alloc[0] <= 72
        assert sum(alloc) == 128

    def test_all_flat_distributes_everything(self):
        alloc = unrestricted_partition([flat_curve()] * 8, 128)
        assert sum(alloc) == 128

    def test_flat_leftover_spreads_round_robin(self):
        """Zero-utility leftovers spread one way at a time (round-robin),
        not greedily into the first unfilled core."""
        assert unrestricted_partition([flat_curve()] * 8, 128) == [16] * 8
        three = [flat_curve(max_ways=16)] * 3
        assert unrestricted_partition(
            three, 10, max_ways_per_core=4
        ) == [4, 3, 3]
        four = [flat_curve(max_ways=16)] * 4
        assert unrestricted_partition(four, 10) == [3, 3, 2, 2]

    def test_min_ways_respected(self):
        curves = [knee_curve(100, total=10_000)] + [flat_curve()] * 7
        alloc = unrestricted_partition(curves, 128, min_ways=4)
        assert all(a >= 4 for a in alloc)

    def test_infeasible_settings_rejected(self):
        with pytest.raises(ValueError):
            unrestricted_partition([flat_curve()] * 8, 128, min_ways=20)
        with pytest.raises(ValueError):
            unrestricted_partition([flat_curve()] * 8, 128, max_ways_per_core=10)
        with pytest.raises(ValueError):
            unrestricted_partition([], 128)

    @given(curve_sets())
    @settings(max_examples=25, deadline=None)
    def test_never_worse_than_equal(self, curves):
        """Greedy marginal-utility allocation can always at least match the
        even split on these monotone curves."""
        alloc = unrestricted_partition(curves, 128)
        assert sum(alloc) == 128
        assert predicted_misses(curves, alloc) <= predicted_misses(
            curves, equal_partition(8, 128)
        ) * (1 + 1e-9)

    def test_predicted_misses_len_check(self):
        with pytest.raises(ValueError):
            predicted_misses([flat_curve()], [1, 2])


class TestBankAwareInvariants:
    def run(self, curves, **kw) -> BankAwareDecision:
        return bank_aware_partition(curves, **kw)

    def test_capacity_exact(self):
        d = self.run([knee_curve(k) for k in (4, 8, 16, 32, 45, 6, 10, 60)])
        assert d.total_ways == 128

    def test_center_banks_all_assigned(self):
        d = self.run([knee_curve(k) for k in (4, 8, 16, 32, 45, 6, 10, 60)])
        assert sum(d.center_banks) == 8

    def test_rule1_rule2_center_cores_whole_banks(self):
        """Cores with Center banks own 8 + 8k ways (whole banks only)."""
        d = self.run([knee_curve(k) for k in (4, 8, 16, 32, 45, 6, 10, 60)])
        for core in range(8):
            if d.center_banks[core]:
                assert d.ways[core] == 8 * (1 + d.center_banks[core])

    def test_rule3_pairs_adjacent_and_disjoint(self):
        d = self.run([knee_curve(k) for k in (14, 2, 14, 2, 14, 2, 60, 60)])
        seen = set()
        for a, b in d.pairs:
            assert b == a + 1
            assert not {a, b} & seen
            seen.update((a, b))

    def test_pair_sums_to_two_banks(self):
        d = self.run([knee_curve(k) for k in (14, 2, 14, 2, 14, 2, 60, 60)])
        for a, b in d.pairs:
            assert d.ways[a] + d.ways[b] == 16

    def test_cap_is_9_16(self):
        monster = knee_curve(128, total=1_000_000)
        d = self.run([monster] + [flat_curve(1.0)] * 7)
        assert max(d.ways) <= 72

    def test_sharing_benefits_needy_neighbour(self):
        """When Center banks are contested away, a 12-way core next to a
        4-way core pairs with it and takes part of its Local bank."""
        curves = [knee_curve(12, total=1000), knee_curve(4, total=1000)]
        # six center-hungry cores soak up all eight Center banks
        curves += [knee_curve(72, total=1_000_000)] * 6
        d = self.run(curves)
        assert sum(d.center_banks[2:]) == 8
        assert (0, 1) in d.pairs
        assert d.ways[0] > 8 > d.ways[1]

    def test_unpaired_cores_keep_local_bank(self):
        d = self.run([flat_curve()] * 8)
        for core in range(8):
            if d.center_banks[core] == 0 and d.pair_of(core) is None:
                assert d.ways[core] == 8

    @given(curve_sets())
    @settings(max_examples=25, deadline=None)
    def test_structural_invariants_hold_for_any_curves(self, curves):
        d = bank_aware_partition(curves)
        # BankAwareDecision.__post_init__ enforces rules 1-3; reaching here
        # without exception is the assertion.  Check capacity explicitly:
        assert d.total_ways == 128
        assert sum(d.center_banks) == 8

    @given(curve_sets())
    @settings(max_examples=25, deadline=None)
    def test_close_to_unrestricted(self, curves):
        """The paper's key claim: restrictions cost little — Bank-aware
        predicted misses stay within 25 % of Unrestricted's."""
        d = bank_aware_partition(curves)
        ur = unrestricted_partition(curves, 128, min_ways=1)
        ba_miss = predicted_misses(curves, list(d.ways))
        ur_miss = predicted_misses(curves, ur)
        total = sum(c.total_accesses for c in curves)
        assert ba_miss <= ur_miss + 0.25 * total

    def test_decision_validation_catches_bad_pair(self):
        with pytest.raises(ValueError):
            BankAwareDecision(
                ways=(8,) * 8, center_banks=(1, 0, 0, 0, 0, 0, 0, 0), pairs=()
            )
        with pytest.raises(ValueError):
            BankAwareDecision(
                ways=(10, 6) + (8,) * 6,
                center_banks=(0,) * 8,
                pairs=((0, 2),),  # not adjacent
            )
