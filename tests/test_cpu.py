"""Analytic core timing model."""

import pytest

from repro.config import CoreConfig
from repro.cpu.core import CoreTimer


class TestCoreTimer:
    def test_compute_advance(self):
        t = CoreTimer(0, nonmem_cpi=0.5, mlp=1.0)
        arrival = t.advance_compute(100)
        assert arrival == pytest.approx(50.0)
        assert t.instructions == 101  # gap + the memory op itself

    def test_memory_latency_overlapped_by_mlp(self):
        t = CoreTimer(0, nonmem_cpi=0.5, mlp=4.0)
        t.complete_access(400.0)
        assert t.time == pytest.approx(100.0)
        assert t.mem_stall == pytest.approx(100.0)
        assert t.accesses == 1

    def test_mlp_capped_by_outstanding_requests(self):
        cfg = CoreConfig(max_outstanding=4)
        t = CoreTimer(0, cfg, mlp=100.0)
        assert t.mlp == 4.0

    def test_mlp_floor_of_one(self):
        t = CoreTimer(0, mlp=0.1)
        assert t.mlp == 1.0

    def test_cpi(self):
        t = CoreTimer(0, nonmem_cpi=1.0, mlp=1.0)
        t.advance_compute(99)  # 100 instructions, 99 cycles
        t.complete_access(1.0)
        assert t.cpi == pytest.approx(1.0)

    def test_snapshot_delta(self):
        t = CoreTimer(0, nonmem_cpi=1.0, mlp=1.0)
        t.advance_compute(9)
        snap = t.snapshot()
        t.advance_compute(9)
        t.complete_access(10.0)
        assert t.delta_cpi(snap) == pytest.approx((9 + 10) / 10)

    def test_validation(self):
        with pytest.raises(ValueError):
            CoreTimer(0, nonmem_cpi=0.0)
        t = CoreTimer(0)
        with pytest.raises(ValueError):
            t.complete_access(-1.0)
