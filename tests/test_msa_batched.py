"""Vectorized MSA batch kernel == per-access reference, bit for bit.

The batched kernel (:mod:`repro.profiling.batched`) is only allowed to
exist because it is *checked* against the reference loop: these tests
assert exact equality of counters, mass and carried stack state on random
traces (hypothesis), across batch boundaries, interleaved with scalar
observes and epoch management, and for both sampled tag modes.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.profiling.batched import (
    MIN_BATCH,
    batch_eligible,
    batched_depth_bins,
    hash_fold_many,
)
from repro.profiling.msa import MSAProfiler
from repro.profiling.sampled import SampledMSAProfiler
from repro.util.bits import hash_fold
from repro.workloads.spec_like import get
from repro.workloads.synthetic import generate_trace


def assert_profiler_equal(vec, ref):
    """Counters, mass and per-set stacks must match exactly."""
    np.testing.assert_array_equal(vec._counters, ref._counters)
    assert vec._mass == ref._mass
    assert vec._stacks == ref._stacks


# ---------------------------------------------------------------------------
# hypothesis property: batch path == reference on random traces
# ---------------------------------------------------------------------------

traces = st.lists(st.integers(min_value=0, max_value=255), max_size=400)


class TestPropertyEquivalence:
    @given(trace=traces, num_sets=st.sampled_from([1, 2, 8]),
           positions=st.integers(min_value=1, max_value=9))
    @settings(max_examples=200, deadline=None)
    def test_exact_profiler_matches_reference(self, trace, num_sets, positions):
        lines = np.array(trace, dtype=np.int64)
        vec = MSAProfiler(num_sets, positions)
        ref = MSAProfiler(num_sets, positions)
        if lines.size:
            vec._observe_batch(lines)  # bypass MIN_BATCH dispatch
        ref.observe_many_reference(lines)
        assert_profiler_equal(vec, ref)

    @given(trace=traces, split=st.integers(min_value=0, max_value=400))
    @settings(max_examples=100, deadline=None)
    def test_state_continuation_across_batches(self, trace, split):
        """Two consecutive batches == one batch == the reference: the
        prologue/stack-rebuild state handoff composes exactly."""
        lines = np.array(trace, dtype=np.int64)
        split = min(split, lines.size)
        vec = MSAProfiler(4, 5)
        ref = MSAProfiler(4, 5)
        for part in (lines[:split], lines[split:]):
            if part.size:
                vec._observe_batch(part)
        ref.observe_many_reference(lines)
        assert_profiler_equal(vec, ref)

    @given(trace=traces, tag_mode=st.sampled_from(["truncate", "fold"]))
    @settings(max_examples=100, deadline=None)
    def test_sampled_profiler_matches_reference(self, trace, tag_mode):
        lines = np.array(trace, dtype=np.int64)
        kwargs = dict(set_sampling=2, partial_tag_bits=3, tag_mode=tag_mode)
        vec = SampledMSAProfiler(4, 5, **kwargs)
        ref = SampledMSAProfiler(4, 5, **kwargs)
        if lines.size:
            vec._observe_batch(lines)
        ref.observe_many_reference(lines)
        assert_profiler_equal(vec, ref)
        assert vec.observed == ref.observed

    @given(values=st.lists(st.integers(min_value=0, max_value=2**40),
                           min_size=1, max_size=50),
           bits=st.integers(min_value=1, max_value=16))
    @settings(max_examples=100, deadline=None)
    def test_hash_fold_many_matches_scalar(self, values, bits):
        arr = np.array(values, dtype=np.int64)
        expect = [hash_fold(int(v), bits) for v in values]
        assert hash_fold_many(arr, bits).tolist() == expect


# ---------------------------------------------------------------------------
# the real dispatch path on realistic traces
# ---------------------------------------------------------------------------


class TestDispatchEquivalence:
    def _trace(self, name="bzip2", accesses=6_000, num_sets=64, seed=5):
        return generate_trace(get(name), accesses, num_sets, seed=seed).lines

    def test_observe_many_uses_batch_and_matches(self):
        lines = self._trace()
        assert batch_eligible(lines)
        vec = MSAProfiler(64, 16)
        ref = MSAProfiler(64, 16)
        vec.observe_many(lines)
        ref.observe_many_reference(lines)
        assert_profiler_equal(vec, ref)

    def test_interleaved_scalar_and_batch(self):
        """Scalar observes, reset() and decay() between batches all see the
        same stack state the reference would carry."""
        lines = self._trace(accesses=4_000)
        vec = MSAProfiler(64, 16)
        ref = MSAProfiler(64, 16)
        for p in (vec, ref):
            p.observe_many(lines[:2_000]) if p is vec else \
                p.observe_many_reference(lines[:2_000])
            p.reset()
            for line in lines[2_000:2_010]:
                p.observe(int(line))
            p.decay(0.5)
        vec.observe_many(lines[2_010:])
        ref.observe_many_reference(lines[2_010:])
        assert_profiler_equal(vec, ref)

    @pytest.mark.parametrize("tag_mode", ["truncate", "fold"])
    def test_sampled_dispatch_matches(self, tag_mode):
        lines = self._trace(name="mcf", accesses=8_000)
        kwargs = dict(set_sampling=4, partial_tag_bits=8, tag_mode=tag_mode)
        vec = SampledMSAProfiler(64, 16, **kwargs)
        ref = SampledMSAProfiler(64, 16, **kwargs)
        vec.observe_many(lines)
        ref.observe_many_reference(lines)
        assert_profiler_equal(vec, ref)
        assert vec.observed == ref.observed

    def test_histogram_mass_conserved(self):
        lines = self._trace(accesses=5_000)
        p = MSAProfiler(64, 16)
        p.observe_many(lines)
        assert p.total_accesses == p.expected_mass == 5_000


# ---------------------------------------------------------------------------
# batch_eligible gate
# ---------------------------------------------------------------------------


class TestBatchEligible:
    def test_small_arrays_fall_back(self):
        assert not batch_eligible(np.arange(MIN_BATCH - 1))
        assert batch_eligible(np.arange(MIN_BATCH))

    def test_non_arrays_fall_back(self):
        assert not batch_eligible(list(range(MIN_BATCH)))
        assert not batch_eligible(np.arange(MIN_BATCH, dtype=np.float64))
        assert not batch_eligible(np.arange(MIN_BATCH).reshape(2, -1))

    def test_negative_values_fall_back(self):
        a = np.arange(MIN_BATCH)
        a[7] = -1
        assert not batch_eligible(a)

    def test_uint64_beyond_int64_falls_back(self):
        a = np.arange(MIN_BATCH, dtype=np.uint64)
        assert batch_eligible(a)
        a[0] = np.iinfo(np.uint64).max
        assert not batch_eligible(a)

    def test_fallback_path_still_correct(self):
        """Lists (ineligible) go down the reference loop, same result."""
        lines = [int(x) for x in np.arange(MIN_BATCH) % 37]
        via_list = MSAProfiler(4, 8)
        via_list.observe_many(lines)
        via_array = MSAProfiler(4, 8)
        via_array.observe_many(np.array(lines, dtype=np.int64))
        assert_profiler_equal(via_array, via_list)


# ---------------------------------------------------------------------------
# kernel-level edges
# ---------------------------------------------------------------------------


class TestKernelEdges:
    def test_empty_batch(self):
        bins, stacks = batched_depth_bins(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64),
            2, 4, [[1], []],
        )
        assert bins.size == 0
        assert stacks == [[1], []]

    def test_prologue_bins_discarded(self):
        """Carried-in stack lines do not contribute histogram mass."""
        stacks = [[3, 1], []]
        keys = np.array([1], dtype=np.int64)  # hits at depth 2
        bins, new_stacks = batched_depth_bins(
            keys, np.zeros(1, dtype=np.int64), 2, 4, stacks
        )
        assert bins.tolist() == [1]
        assert new_stacks == [[1, 3], []]
        assert stacks == [[3, 1], []]  # input not mutated

    def test_stack_truncated_to_positions(self):
        keys = np.arange(10, dtype=np.int64)
        bins, stacks = batched_depth_bins(
            keys, np.zeros(10, dtype=np.int64), 1, 3, [[]]
        )
        assert bins.tolist() == [3] * 10  # all cold misses
        assert stacks == [[9, 8, 7]]
