"""Per-workload calibration contract of the SPEC-like suite.

Each of the 26 models was calibrated (DESIGN.md §7) so that its *effective*
LRU demand — pool footprint plus stream self-inflation — lands where the
paper's evidence puts that benchmark.  These tests pin the contract so a
future retune cannot silently break the Fig. 3 / Table III behaviours.
"""

import pytest

from repro.profiling.miss_curve import MissCurve
from repro.profiling.msa import MSAProfiler
from repro.workloads import generate_trace, get, suite

NSETS = 128


@pytest.fixture(scope="module")
def curves():
    out = {}
    for name in suite():
        prof = MSAProfiler(NSETS, 128)
        lines = generate_trace(get(name), 40_000, NSETS, seed=21).lines
        warm = len(lines) // 3
        prof.observe_many(lines[:warm])
        prof.reset()
        prof.observe_many(lines[warm:])
        out[name] = MissCurve.from_profiler(prof, name)
    return out


def satisfied_at(curve: MissCurve, tolerance: float = 0.06) -> int:
    """Smallest allocation within ``tolerance`` miss ratio of the curve's
    floor — the workload's effective demand."""
    floor = curve.miss_ratio_at(128)
    for w in range(129):
        if curve.miss_ratio_at(w) <= floor + tolerance:
            return w
    return 128


# (workload, max effective demand in ways, max floor miss ratio)
DEMAND_CONTRACT = [
    ("gzip", 8, 0.15), ("eon", 6, 0.10), ("perlbmk", 10, 0.15),
    ("crafty", 13, 0.12), ("sixtrack", 8, 0.10), ("galgel", 8, 0.20),
    ("gap", 8, 0.20), ("vpr", 18, 0.15), ("vortex", 20, 0.15),
    ("mesa", 30, 0.15), ("fma3d", 14, 0.20), ("wupwise", 10, 0.45),
    ("applu", 16, 0.50), ("art", 24, 0.40), ("swim", 16, 0.80),
]


@pytest.mark.parametrize("name,max_demand,max_floor", DEMAND_CONTRACT)
def test_effective_demand(curves, name, max_demand, max_floor):
    c = curves[name]
    assert satisfied_at(c) <= max_demand, (
        f"{name} effective demand {satisfied_at(c)} exceeds {max_demand}"
    )
    assert c.miss_ratio_at(128) <= max_floor


# workloads that must keep earning capacity deep into the cache (the
# paper's big winners: facerec/twolf 56, bzip2 48, mgrid 40, parser)
DEEP_EARNERS = ["bzip2", "twolf", "facerec", "mgrid", "parser"]


@pytest.mark.parametrize("name", DEEP_EARNERS)
def test_deep_earners_reward_beyond_equal_share(curves, name):
    c = curves[name]
    assert c.miss_ratio_at(16) - c.miss_ratio_at(48) > 0.15, name
    assert c.miss_ratio_at(48) < 0.35, name


# the designated streamers must keep substantial immovable floors — they
# provide the insertion pressure that destroys the shared cache
STREAMERS = [("swim", 0.6), ("mcf", 0.45), ("applu", 0.35)]


@pytest.mark.parametrize("name,min_floor", STREAMERS)
def test_streamers_keep_floors(curves, name, min_floor):
    assert curves[name].miss_ratio_at(128) > min_floor, name


def test_donors_outnumber_receivers(curves):
    """For the budget dynamics of Fig. 7 to work, roughly half the suite
    must be satisfied at (or below) the 16-way even share, and only a
    handful may demand more than 32 ways."""
    demands = {n: satisfied_at(c) for n, c in curves.items()}
    donors = [n for n, d in demands.items() if d <= 16]
    deep = [n for n, d in demands.items() if d > 32]
    assert len(donors) >= 12, sorted(demands.items(), key=lambda kv: kv[1])
    assert 3 <= len(deep) <= 7, sorted(deep)


def test_every_curve_monotone(curves):
    for name, c in curves.items():
        prev = 1.1
        for w in range(0, 129, 8):
            cur = c.miss_ratio_at(w)
            assert cur <= prev + 1e-9, name
            prev = cur
