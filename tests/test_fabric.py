"""The sweep fabric: supervisor, backends, dead letters, chaos, resume."""

import dataclasses
import json
import os

import pytest

import repro.fabric.supervisor as supervisor_mod
from repro.analysis.montecarlo import collect_profiles, run_monte_carlo
from repro.config import scaled_config
from repro.fabric import (
    QUARANTINED,
    ChaosAbort,
    ChaosPlan,
    DeadLetterError,
    DeadLetterLedger,
    LocalClusterBackend,
    Supervisor,
    SupervisorPolicy,
    make_backend,
    pick_labels,
    run_fabric_monte_carlo,
    truncate_file,
)
from repro.fabric.backends import read_shard_result
from repro.fabric.chaos import InjectedWorkerCrash
from repro.resilience.checkpoint import backup_path, load_checkpoint
from repro.resilience.errors import ConfigError, PoisonItemError
from repro.telemetry.events import canonical_events
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.tracer import Tracer
from repro.workloads import random_mixes

CFG = scaled_config(32, epoch_cycles=150_000)


@pytest.fixture(scope="module")
def curves():
    return collect_profiles(config=CFG, accesses=2000)


@pytest.fixture(autouse=True)
def _no_backoff_sleep(monkeypatch):
    """Retry backoff must not slow the suite down."""
    monkeypatch.setattr(supervisor_mod, "_sleep", lambda _s: None)


# ---------------------------------------------------------------------------
# policy


class TestSupervisorPolicy:
    def test_defaults_are_valid(self):
        policy = SupervisorPolicy()
        assert policy.max_attempts == 3
        assert policy.on_poison == "raise"

    @pytest.mark.parametrize(
        "kw",
        [
            {"max_attempts": 0},
            {"timeout_s": 0.0},
            {"timeout_s": -1.0},
            {"backoff_base_s": -0.1},
            {"on_poison": "explode"},
        ],
    )
    def test_rejects_bad_values(self, kw):
        with pytest.raises(ConfigError):
            SupervisorPolicy(**kw)

    def test_backoff_is_seed_deterministic(self):
        a = SupervisorPolicy(seed=5)
        b = SupervisorPolicy(seed=5)
        assert a.backoff_s(3, 2) == b.backoff_s(3, 2)
        assert a.backoff_s(3, 2) != SupervisorPolicy(seed=6).backoff_s(3, 2)

    def test_backoff_grows_then_caps(self):
        policy = SupervisorPolicy(backoff_base_s=0.1, backoff_max_s=0.3)
        # jitter is in [0.5x, 1.5x), so compare against the scale bounds
        assert policy.backoff_s(0, 1) <= 0.1 * 1.5
        assert policy.backoff_s(0, 9) <= 0.3 * 1.5


# ---------------------------------------------------------------------------
# supervisor, serial rung (jobs=1 runs in-process: closures are fine)


class TestSupervisorSerial:
    def test_plain_map_in_order(self):
        sup = Supervisor(1)
        assert list(sup.map_supervised(lambda x: x * 2, [1, 2, 3])) \
            == [2, 4, 6]
        assert sup.rung == "serial"
        assert sup.events == []
        assert sup.summary()["total_attempts"] == 3

    def test_retry_until_success(self):
        calls = {"n": 0}

        def flaky(x):
            calls["n"] += 1
            if calls["n"] < 3:
                raise RuntimeError(f"boom {calls['n']}")
            return x

        sup = Supervisor(1, policy=SupervisorPolicy(max_attempts=3))
        assert list(sup.map_supervised(flaky, ["ok"])) == ["ok"]
        retries = [e for e in sup.events if e["kind"] == "retry"]
        assert [e["attempt"] for e in retries] == [1, 2]
        assert sup.summary()["total_attempts"] == 3

    def test_quarantine_raises_and_records(self, tmp_path):
        ledger = DeadLetterLedger(tmp_path / "dead.jsonl")
        sup = Supervisor(
            1, policy=SupervisorPolicy(max_attempts=2),
            deadletter=ledger, sweep="unit",
        )

        def poison(_x):
            raise ValueError("always")

        with pytest.raises(PoisonItemError) as info:
            list(sup.map_supervised(poison, ["a", "b"], labels=["la", "lb"]))
        assert info.value.index == 0
        assert info.value.label == "la"
        assert info.value.attempts == 2
        entries = ledger.entries()
        assert len(entries) == 1
        assert entries[0]["label"] == "la"
        assert entries[0]["sweep"] == "unit"
        assert sup.summary()["quarantined"] == [0]

    def test_on_poison_skip_yields_sentinel_in_slot(self):
        def poison_b(x):
            if x == "b":
                raise ValueError("no b")
            return x.upper()

        sup = Supervisor(
            1, policy=SupervisorPolicy(max_attempts=2, on_poison="skip")
        )
        out = list(sup.map_supervised(poison_b, ["a", "b", "c"]))
        assert out == ["A", QUARANTINED, "C"]
        assert sup.summary()["quarantined"] == [1]

    def test_events_flow_into_tracer_and_metrics(self):
        tracer, metrics = Tracer(), MetricsRegistry()
        calls = {"n": 0}

        def once(x):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("first")
            return x

        sup = Supervisor(1, tracer=tracer, metrics=metrics)
        list(sup.map_supervised(once, [5]))
        sup_events = tracer.select("supervisor")
        assert [e["kind"] for e in sup_events] == ["retry"]
        assert sup_events[0]["rung"] == "serial"
        assert metrics.snapshot()["counters"]["supervisor.retry"] == 1


# ---------------------------------------------------------------------------
# supervisor, pool rungs (workers are real processes; faults come from
# the chaos wrapper, whose one-shot markers work across processes)


def _square(x):
    return x * x


class TestSupervisorPool:
    def test_matches_serial(self):
        serial = list(Supervisor(1).map_supervised(_square, range(9)))
        pooled = list(Supervisor(2).map_supervised(_square, range(9)))
        assert pooled == serial

    def test_injected_crash_is_retried(self, tmp_path):
        plan = ChaosPlan(state_dir=str(tmp_path), crash_labels=("3",))
        sup = Supervisor(2, policy=SupervisorPolicy(max_attempts=3))
        out = list(sup.map_supervised(plan.wrap(_square), range(6)))
        assert out == [x * x for x in range(6)]
        retries = [e for e in sup.events if e["kind"] == "retry"]
        assert len(retries) == 1
        assert retries[0]["label"] == "3"
        assert "InjectedWorkerCrash" in retries[0]["detail"]

    def test_hard_kill_degrades_one_rung(self, tmp_path):
        plan = ChaosPlan(state_dir=str(tmp_path), kill_labels=("2",))
        sup = Supervisor(2)
        out = list(sup.map_supervised(plan.wrap(_square), range(6)))
        assert out == [x * x for x in range(6)]
        kinds = [e["kind"] for e in sup.events]
        assert "degrade" in kinds
        assert sup.rung in ("fresh-pool", "serial")

    def test_two_kills_still_finish(self, tmp_path):
        # both faults may land inside the same pool generation, so the
        # ladder drops one or two rungs — never none, and never past serial
        plan = ChaosPlan(state_dir=str(tmp_path), kill_labels=("1", "4"))
        sup = Supervisor(2)
        out = list(sup.map_supervised(plan.wrap(_square), range(6)))
        assert out == [x * x for x in range(6)]
        assert 1 <= [e["kind"] for e in sup.events].count("degrade") <= 2
        assert sup.rung in ("fresh-pool", "serial")

    def test_hang_trips_the_deadline(self, tmp_path):
        plan = ChaosPlan(
            state_dir=str(tmp_path), hang_labels=("2",), hang_s=30.0
        )
        sup = Supervisor(
            2, policy=SupervisorPolicy(timeout_s=0.6, max_attempts=3)
        )
        out = list(sup.map_supervised(plan.wrap(_square), range(5)))
        assert out == [x * x for x in range(5)]
        kinds = [e["kind"] for e in sup.events]
        assert "timeout" in kinds
        assert "degrade" in kinds


# ---------------------------------------------------------------------------
# dead-letter ledger


class TestDeadLetterLedger:
    def test_round_trip_and_len(self, tmp_path):
        ledger = DeadLetterLedger(tmp_path / "d.jsonl")
        entry = ledger.record(
            index=4, label="mix", attempts=3, error="boom", sweep="s"
        )
        assert entry["index"] == 4
        assert len(ledger) == 1
        assert ledger.entries()[0] == entry

    def test_missing_file_is_empty(self, tmp_path):
        assert DeadLetterLedger(tmp_path / "nope.jsonl").entries() == []

    def test_torn_tail_is_dropped(self, tmp_path):
        ledger = DeadLetterLedger(tmp_path / "d.jsonl")
        ledger.record(index=0, label="a", attempts=1, error="x")
        ledger.record(index=1, label="b", attempts=1, error="y")
        # tear the final append mid-line, as a crash would
        raw = ledger.path.read_bytes()
        ledger.path.write_bytes(raw[:-9])
        entries = ledger.entries()
        assert [e["label"] for e in entries] == ["a"]

    def test_mid_file_damage_raises(self, tmp_path):
        path = tmp_path / "d.jsonl"
        ledger = DeadLetterLedger(path)
        ledger.record(index=0, label="a", attempts=1, error="x")
        path.write_bytes(b"garbage\n" + path.read_bytes())
        with pytest.raises(DeadLetterError, match="damaged"):
            ledger.entries()


# ---------------------------------------------------------------------------
# chaos plan


class TestChaosPlan:
    def test_pick_labels_is_deterministic_and_sorted(self):
        labels = [f"m{i}" for i in range(10)]
        a = pick_labels(labels, 3, 42, "kill")
        assert a == pick_labels(labels, 3, 42, "kill")
        assert a != pick_labels(labels, 3, 42, "hang")
        assert list(a) == [m for m in labels if m in a]

    def test_pick_too_many_rejected(self):
        with pytest.raises(ConfigError, match="cannot pick"):
            pick_labels(["a"], 2, 0, "crash")

    def test_crash_fires_exactly_once_across_instances(self, tmp_path):
        plan = ChaosPlan(state_dir=str(tmp_path), crash_labels=("7",))
        wrapped = plan.wrap(_square)
        with pytest.raises(InjectedWorkerCrash):
            wrapped(7)
        # a *new* wrapper sees the marker: resume does not re-crash
        assert plan.wrap(_square)(7) == 49

    def test_poison_fires_every_time(self, tmp_path):
        plan = ChaosPlan(state_dir=str(tmp_path), poison_labels=("3",))
        wrapped = plan.wrap(_square)
        for _ in range(3):
            with pytest.raises(InjectedWorkerCrash, match="poison"):
                wrapped(3)

    def test_truncate_file(self, tmp_path):
        path = tmp_path / "f.bin"
        path.write_bytes(b"x" * 100)
        assert truncate_file(path, keep_fraction=0.3) == 30
        assert path.stat().st_size == 30

    def test_describe_is_manifest_ready(self, tmp_path):
        plan = ChaosPlan(
            state_dir=str(tmp_path), kill_labels=("a",), abort_after=4
        )
        desc = plan.describe()
        assert desc["kill"] == ["a"]
        assert desc["abort_after"] == 4
        json.dumps(desc)  # must be JSON-serialisable


# ---------------------------------------------------------------------------
# local-cluster backend


def _fail_always(_x):
    raise RuntimeError("cluster poison")


class TestLocalCluster:
    def _backend(self, root, **kw):
        kw.setdefault("jobs", 2)
        kw.setdefault("shard_size", 2)
        return LocalClusterBackend(root, **kw)

    def test_matches_inproc(self, tmp_path):
        items = list(range(7))
        expected = [x * x for x in items]
        backend = self._backend(tmp_path / "cl")
        assert list(backend.map_ordered(_square, items)) == expected

    def test_resume_reuses_valid_shards(self, tmp_path):
        items = list(range(6))
        root = tmp_path / "cl"
        first = self._backend(root)
        assert list(first.map_ordered(_square, items)) \
            == [x * x for x in items]
        again = self._backend(root)
        assert list(again.map_ordered(_square, items)) \
            == [x * x for x in items]
        assert again.rounds_used == 0  # nothing recomputed

    def test_corrupt_shard_result_is_recomputed(self, tmp_path):
        items = list(range(6))
        root = tmp_path / "cl"
        first = self._backend(root)
        list(first.map_ordered(_square, items))
        victim = root / "results" / "shard-000002-000004.json"
        victim.write_text(victim.read_text()[:-10])
        assert read_shard_result(root, 2, 4) is None
        again = self._backend(root)
        assert list(again.map_ordered(_square, items)) \
            == [x * x for x in items]
        assert again.rounds_used == 1
        kinds = [e["kind"] for e in again.events]
        assert "retry" in kinds  # the discarded corrupt shard

    def test_orphaned_claim_is_reclaimed(self, tmp_path):
        items = list(range(4))
        root = tmp_path / "cl"
        first = self._backend(root)
        list(first.map_ordered(_square, items))
        # simulate a worker that died holding a claim
        name = "shard-000000-000002.json"
        (root / "results" / name).unlink()
        (root / "claims" / name).write_text('{"start": 0, "stop": 2}')
        again = self._backend(root)
        assert list(again.map_ordered(_square, items)) \
            == [x * x for x in items]

    def test_queue_binding_mismatch_refused(self, tmp_path):
        root = tmp_path / "cl"
        backend = self._backend(root)
        list(backend.map_ordered(_square, [1, 2], meta={"seed": 1}))
        other = self._backend(root)
        with pytest.raises(ConfigError, match="different sweep"):
            list(other.map_ordered(_square, [1, 2], meta={"seed": 2}))

    def test_poison_shard_quarantined(self, tmp_path):
        ledger = DeadLetterLedger(tmp_path / "dead.jsonl")
        backend = self._backend(
            tmp_path / "cl",
            policy=SupervisorPolicy(max_attempts=2),
            deadletter=ledger,
        )
        with pytest.raises(PoisonItemError):
            list(backend.map_ordered(_fail_always, [1, 2, 3]))
        assert len(ledger) >= 1
        assert backend.quarantined_shards

    def test_poison_shard_skip_mode(self, tmp_path):
        backend = self._backend(
            tmp_path / "cl",
            policy=SupervisorPolicy(max_attempts=2, on_poison="skip"),
        )
        out = list(backend.map_ordered(_fail_always, [1, 2, 3]))
        assert out == [QUARANTINED] * 3

    def test_make_backend_needs_a_root(self):
        with pytest.raises(ConfigError, match="cluster root"):
            make_backend("local-cluster")

    def test_make_backend_rejects_unknown(self):
        with pytest.raises(ConfigError, match="unknown fabric backend"):
            make_backend("carrier-pigeon")


# ---------------------------------------------------------------------------
# the fabric sweep: the PR's acceptance gate


class TestFabricSweep:
    def test_inproc_matches_legacy_runner(self, curves):
        legacy = run_monte_carlo(5, CFG, curves=curves, seed=11)
        fabric = run_fabric_monte_carlo(
            5, CFG, curves=curves, seed=11, backend="inproc"
        )
        assert [p.to_dict() for p in fabric.result.points] \
            == [p.to_dict() for p in legacy.points]

    def test_pool_matches_inproc(self, curves):
        inproc = run_fabric_monte_carlo(
            5, CFG, curves=curves, seed=11, backend="inproc"
        )
        pooled = run_fabric_monte_carlo(
            5, CFG, curves=curves, seed=11, backend="pool", jobs=2
        )
        assert [p.to_dict() for p in pooled.result.points] \
            == [p.to_dict() for p in inproc.result.points]

    def test_local_cluster_matches_inproc(self, curves, tmp_path):
        inproc = run_fabric_monte_carlo(
            5, CFG, curves=curves, seed=11, backend="inproc"
        )
        cluster = run_fabric_monte_carlo(
            5, CFG, curves=curves, seed=11, backend="local-cluster",
            jobs=2, cluster_root=tmp_path / "cl", shard_size=2,
        )
        assert [p.to_dict() for p in cluster.result.points] \
            == [p.to_dict() for p in inproc.result.points]

    def test_checkpoint_with_skip_mode_refused(self, curves, tmp_path):
        with pytest.raises(ConfigError, match="contiguous-prefix"):
            run_fabric_monte_carlo(
                3, CFG, curves=curves,
                policy=SupervisorPolicy(on_poison="skip"),
                checkpoint_path=str(tmp_path / "c.json"),
            )

    def test_checkpoint_with_cluster_backend_refused(self, curves, tmp_path):
        with pytest.raises(ConfigError, match="shard results"):
            run_fabric_monte_carlo(
                3, CFG, curves=curves, backend="local-cluster",
                cluster_root=tmp_path / "cl",
                checkpoint_path=str(tmp_path / "c.json"),
            )

    def test_chaos_kill_resume_is_bit_identical(self, curves, tmp_path):
        """The tentpole guarantee: crash + hard kill + driver abort +
        resume produces the same canonical trace as a clean serial run."""
        n, seed = 8, 11
        t_clean = Tracer()
        clean = run_fabric_monte_carlo(
            n, CFG, curves=curves, seed=seed, backend="inproc",
            tracer=t_clean,
        )
        mixes = random_mixes(n, CFG.num_cores, seed=seed)
        labels = [str(m) for m in mixes]
        plan = ChaosPlan(
            state_dir=str(tmp_path / "chaos"),
            crash_labels=pick_labels(labels, 1, 3, "crash"),
            kill_labels=pick_labels(labels, 1, 3, "kill"),
            abort_after=4,
        )
        policy = SupervisorPolicy(max_attempts=3)
        ckpt = str(tmp_path / "ck.json")
        ledger = DeadLetterLedger(tmp_path / "dead.jsonl")
        t_chaos = Tracer()
        with pytest.raises(ChaosAbort):
            run_fabric_monte_carlo(
                n, CFG, curves=curves, seed=seed, backend="pool", jobs=2,
                policy=policy, chaos=plan, checkpoint_path=ckpt,
                checkpoint_every=2, tracer=t_chaos, deadletter=ledger,
            )
        assert load_checkpoint(ckpt, "monte-carlo")[1]  # progress persisted
        t_resume = Tracer()
        resumed = run_fabric_monte_carlo(
            n, CFG, curves=curves, seed=seed, backend="pool", jobs=2,
            policy=policy, chaos=dataclasses.replace(plan, abort_after=None),
            checkpoint_path=ckpt, resume=True, tracer=t_resume,
            deadletter=ledger,
        )
        assert len(resumed.result.points) == n
        assert [p.to_dict() for p in resumed.result.points] \
            == [p.to_dict() for p in clean.result.points]
        assert canonical_events(t_resume.events) \
            == canonical_events(t_clean.events)
        assert len(ledger) == 0  # every fault was survivable

    def test_truncated_checkpoint_falls_back_to_bak(self, curves, tmp_path):
        n, seed = 6, 11
        ckpt = str(tmp_path / "ck.json")
        plan = ChaosPlan(state_dir=str(tmp_path / "chaos"), abort_after=4)
        with pytest.raises(ChaosAbort):
            run_fabric_monte_carlo(
                n, CFG, curves=curves, seed=seed, backend="inproc",
                chaos=plan, checkpoint_path=ckpt, checkpoint_every=2,
            )
        assert os.path.isfile(backup_path(ckpt))
        truncate_file(ckpt)  # tear the newest generation mid-byte
        clean = run_fabric_monte_carlo(
            n, CFG, curves=curves, seed=seed, backend="inproc"
        )
        resumed = run_fabric_monte_carlo(
            n, CFG, curves=curves, seed=seed, backend="inproc",
            checkpoint_path=ckpt, resume=True,
        )
        assert [p.to_dict() for p in resumed.result.points] \
            == [p.to_dict() for p in clean.result.points]

    def test_fabric_checkpoint_resumes_under_legacy_runner(
        self, curves, tmp_path
    ):
        """Same kind + meta: the two runners' snapshots interoperate."""
        n, seed = 6, 11
        ckpt = str(tmp_path / "ck.json")
        plan = ChaosPlan(state_dir=str(tmp_path / "chaos"), abort_after=3)
        with pytest.raises(ChaosAbort):
            run_fabric_monte_carlo(
                n, CFG, curves=curves, seed=seed, backend="inproc",
                chaos=plan, checkpoint_path=ckpt,
            )
        legacy = run_monte_carlo(
            n, CFG, curves=curves, seed=seed,
            checkpoint_path=ckpt, resume=True,
        )
        clean = run_monte_carlo(n, CFG, curves=curves, seed=seed)
        assert [p.to_dict() for p in legacy.points] \
            == [p.to_dict() for p in clean.points]

    def test_poison_skip_quarantines_into_ledger(self, curves, tmp_path):
        n, seed = 5, 11
        mixes = random_mixes(n, CFG.num_cores, seed=seed)
        labels = [str(m) for m in mixes]
        plan = ChaosPlan(
            state_dir=str(tmp_path / "chaos"),
            poison_labels=pick_labels(labels, 1, 3, "poison"),
        )
        ledger = DeadLetterLedger(tmp_path / "dead.jsonl")
        run = run_fabric_monte_carlo(
            n, CFG, curves=curves, seed=seed, backend="pool", jobs=2,
            policy=SupervisorPolicy(max_attempts=2, on_poison="skip"),
            chaos=plan, deadletter=ledger,
        )
        assert len(run.result.points) == n - 1
        assert len(ledger) == 1
        summary = run.supervisor_summary()
        assert summary["actions"].get("quarantine") == 1
        assert summary["quarantined"]
