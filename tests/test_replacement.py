"""Replacement policies: LRU semantics, PLRU, random, candidate masking."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cache.replacement import (
    LRUPolicy,
    RandomPolicy,
    TreePLRUPolicy,
    make_policy,
)


class TestLRU:
    def test_victim_is_least_recent(self):
        p = LRUPolicy(4)
        for w in (0, 1, 2, 3, 1, 0):
            p.touch(w)
        assert p.victim(range(4)) == 2

    def test_untouched_preferred(self):
        p = LRUPolicy(4)
        p.touch(0)
        p.touch(1)
        assert p.victim(range(4)) in (2, 3)

    def test_candidates_restrict_choice(self):
        p = LRUPolicy(4)
        for w in (3, 2, 1, 0):
            p.touch(w)
        # way 3 is globally LRU but only 0 and 1 are candidates
        assert p.victim((0, 1)) == 1

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError):
            LRUPolicy(4).victim(())

    def test_out_of_range_way(self):
        p = LRUPolicy(2)
        with pytest.raises(IndexError):
            p.touch(2)
        with pytest.raises(IndexError):
            p.victim((5,))

    def test_recency_order(self):
        p = LRUPolicy(3)
        for w in (2, 0, 1):
            p.touch(w)
        assert p.recency_order() == [1, 0, 2]

    @given(st.lists(st.integers(0, 7), min_size=1, max_size=60))
    def test_matches_reference_model(self, touches):
        """LRU victim == the way whose last touch is oldest (reference)."""
        p = LRUPolicy(8)
        last = {w: -1 for w in range(8)}
        for i, w in enumerate(touches):
            p.touch(w)
            last[w] = i
        assert p.victim(range(8)) == min(range(8), key=lambda w: last[w])


class TestTreePLRU:
    def test_requires_pow2(self):
        with pytest.raises(ValueError):
            TreePLRUPolicy(6)

    def test_never_evicts_most_recent(self):
        p = TreePLRUPolicy(8)
        for w in (0, 3, 5, 7, 2):
            p.touch(w)
        assert p.victim(range(8)) != 2

    def test_victim_respects_candidates(self):
        p = TreePLRUPolicy(4)
        for w in (0, 1, 2, 3):
            p.touch(w)
        assert p.victim((1, 2)) in (1, 2)

    @given(st.lists(st.integers(0, 3), min_size=1, max_size=40))
    def test_victim_always_valid(self, touches):
        p = TreePLRUPolicy(4)
        for w in touches:
            p.touch(w)
        assert 0 <= p.victim(range(4)) < 4

    def test_single_way(self):
        p = TreePLRUPolicy(1)
        p.touch(0)
        assert p.victim((0,)) == 0


class TestRandom:
    def test_deterministic_under_seed(self):
        a = RandomPolicy(8, seed=1)
        b = RandomPolicy(8, seed=1)
        picks_a = [a.victim(range(8)) for _ in range(20)]
        picks_b = [b.victim(range(8)) for _ in range(20)]
        assert picks_a == picks_b

    def test_respects_candidates(self):
        p = RandomPolicy(8, seed=2)
        for _ in range(50):
            assert p.victim((2, 5)) in (2, 5)


class TestFactory:
    def test_known_policies(self):
        assert isinstance(make_policy("lru", 4), LRUPolicy)
        assert isinstance(make_policy("plru", 4), TreePLRUPolicy)
        assert isinstance(make_policy("random", 4), RandomPolicy)

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            make_policy("mru", 4)
