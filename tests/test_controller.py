"""Epoch-based dynamic repartitioning controller."""

import pytest

from repro.cache.nuca import NucaL2
from repro.config import L2Config
from repro.profiling.msa import MSAProfiler
from repro.sim.controller import EpochController
from repro.workloads import generate_trace, get

CFG = L2Config(num_banks=16, bank_ways=8, sets_per_bank=64)


def make_controller(epoch=1000.0, min_obs=10, decay=0.5):
    l2 = NucaL2(CFG, 8)
    profilers = [MSAProfiler(CFG.sets_per_bank, 72) for _ in range(8)]
    names = ["w%d" % i for i in range(8)]
    return (
        EpochController(
            l2,
            profilers,
            names,
            epoch_cycles=epoch,
            max_ways_per_core=72,
            decay=decay,
            min_observations=min_obs,
        ),
        l2,
        profilers,
    )


def feed(profilers, accesses=400):
    for i, prof in enumerate(profilers):
        trace = generate_trace(
            get("vpr" if i % 2 else "gzip"), accesses, CFG.sets_per_bank, seed=i
        )
        prof.observe_many(trace.lines)


class TestScheduling:
    def test_not_due_before_epoch(self):
        ctrl, _, _ = make_controller(epoch=1000.0)
        assert not ctrl.due(999.0)
        assert ctrl.due(1000.0)

    def test_tick_advances_next_epoch(self):
        ctrl, _, profs = make_controller()
        feed(profs)
        assert ctrl.tick(1000.0)
        assert not ctrl.due(1500.0)
        assert ctrl.due(2000.0)

    def test_skipped_epochs_caught_up(self):
        ctrl, _, profs = make_controller()
        feed(profs)
        ctrl.tick(5500.0)  # jumped over several boundaries
        assert not ctrl.due(5900.0)
        assert ctrl.due(6000.0)

    def test_insufficient_observations_defers(self):
        ctrl, l2, _ = make_controller(min_obs=10_000)
        assert not ctrl.tick(1000.0)
        assert l2.mode == "shared"  # nothing installed
        assert ctrl.history == []


class TestDecisions:
    def test_partition_installed(self):
        ctrl, l2, profs = make_controller()
        feed(profs)
        assert ctrl.tick(1000.0)
        assert l2.mode == "partitioned"
        assert sum(ctrl.last_decision.ways) == 128

    def test_decay_applied_after_decision(self):
        ctrl, _, profs = make_controller(decay=0.5)
        feed(profs, accesses=100)
        before = profs[0].total_accesses
        ctrl.tick(1000.0)
        assert profs[0].total_accesses == pytest.approx(before * 0.5)

    def test_history_grows(self):
        ctrl, _, profs = make_controller()
        feed(profs)
        ctrl.tick(1000.0)
        feed(profs)
        ctrl.tick(2000.0)
        assert len(ctrl.history) == 2

    def test_bad_parameters(self):
        l2 = NucaL2(CFG, 8)
        profs = [MSAProfiler(CFG.sets_per_bank, 72)] * 8
        with pytest.raises(ValueError):
            EpochController(l2, profs, ["x"] * 8, epoch_cycles=0, max_ways_per_core=72)
        with pytest.raises(ValueError):
            EpochController(
                l2, profs, ["x"] * 8, epoch_cycles=10, max_ways_per_core=72, decay=2.0
            )
        with pytest.raises(ValueError):
            EpochController(l2, profs, ["x"] * 7, epoch_cycles=10, max_ways_per_core=72)
