"""Minimal, dependency-free PEP 517/660 build backend.

The target environment has no `wheel` package (and the hook subprocess may
not see setuptools), so the stock setuptools backend cannot produce
(editable) wheels.  An editable wheel is trivial, though: a ``.pth`` file
pointing at ``src`` plus metadata, zipped up.  This backend writes those by
hand; regular wheel/sdist builds delegate to setuptools lazily.
"""

import base64
import hashlib
import os
import zipfile

NAME = "repro"
VERSION = "1.0.0"
DIST = f"{NAME}-{VERSION}"

_METADATA = (
    "Metadata-Version: 2.1\n"
    f"Name: {NAME}\n"
    f"Version: {VERSION}\n"
    "Requires-Dist: numpy>=1.24\n"
).encode()

_WHEEL_META = (
    "Wheel-Version: 1.0\n"
    "Generator: repro-bootstrap\n"
    "Root-Is-Purelib: true\n"
    "Tag: py3-none-any\n"
).encode()


def get_requires_for_build_wheel(config_settings=None):
    return []


def get_requires_for_build_sdist(config_settings=None):
    return []


def get_requires_for_build_editable(config_settings=None):
    return []


def build_sdist(sdist_directory, config_settings=None):
    from setuptools import build_meta as _orig

    return _orig.build_sdist(sdist_directory, config_settings)


def build_wheel(wheel_directory, config_settings=None, metadata_directory=None):
    from setuptools import build_meta as _orig

    return _orig.build_wheel(wheel_directory, config_settings, metadata_directory)


def prepare_metadata_for_build_editable(metadata_directory, config_settings=None):
    dist_info = os.path.join(metadata_directory, f"{DIST}.dist-info")
    os.makedirs(dist_info, exist_ok=True)
    with open(os.path.join(dist_info, "METADATA"), "wb") as fh:
        fh.write(_METADATA)
    with open(os.path.join(dist_info, "WHEEL"), "wb") as fh:
        fh.write(_WHEEL_META)
    return f"{DIST}.dist-info"


def _record_hash(data: bytes) -> str:
    digest = hashlib.sha256(data).digest()
    return "sha256=" + base64.urlsafe_b64encode(digest).rstrip(b"=").decode()


def build_editable(wheel_directory, config_settings=None, metadata_directory=None):
    here = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    src = os.path.join(here, "src")
    files = {
        f"__editable__.{DIST}.pth": (src + "\n").encode(),
        f"{DIST}.dist-info/METADATA": _METADATA,
        f"{DIST}.dist-info/WHEEL": _WHEEL_META,
    }
    record_name = f"{DIST}.dist-info/RECORD"
    rows = [f"{name},{_record_hash(data)},{len(data)}" for name, data in files.items()]
    rows.append(f"{record_name},,")
    files[record_name] = ("\n".join(rows) + "\n").encode()
    wheel_name = f"{DIST}-py3-none-any.whl"
    with zipfile.ZipFile(
        os.path.join(wheel_directory, wheel_name), "w", zipfile.ZIP_DEFLATED
    ) as zf:
        for name, data in files.items():
            zf.writestr(name, data)
    return wheel_name
